#include "src/runtime/schedule_explorer.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "src/common/check.h"

namespace klink {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Fnv1aString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

const char* RunName(int run) {
  static const char* kNames[] = {"running",   "ready",     "blocked-mutex",
                                 "parked-cv", "quiescing", "ended"};
  return kNames[run];
}

}  // namespace

ScheduleExplorer::ScheduleExplorer(const ScheduleExplorerConfig& config)
    : config_(config) {
  KLINK_CHECK_GE(config_.priority_change_points, 0);
  KLINK_CHECK_GT(config_.max_steps_hint, 0u);
  // Draw the distinct priority-demotion steps for this seed.
  uint64_t rng = config_.seed * 0x9e3779b97f4a7c15ull + 1;
  std::set<uint64_t> steps;
  const uint64_t want = std::min<uint64_t>(
      static_cast<uint64_t>(config_.priority_change_points),
      config_.max_steps_hint);
  while (steps.size() < want) {
    steps.insert(1 + SplitMix64(rng) % config_.max_steps_hint);
  }
  demote_steps_.assign(steps.rbegin(), steps.rend());  // descending

  // The constructing thread is participant "main" and starts with the
  // token; install the hooks only once it is registered so a hook call
  // can never observe an empty registry.
  auto main_thread = std::make_unique<Thread>();
  main_thread->name = "main";
  main_thread->priority = BasePriority(main_thread->name);
  main_thread->run = Run::kRunning;
  main_thread->os_id = std::this_thread::get_id();
  main_thread->index = 0;
  current_ = main_thread.get();
  by_os_id_[main_thread->os_id] = main_thread.get();
  threads_.push_back(std::move(main_thread));

  KLINK_CHECK(GetScheduleHooks() == nullptr);  // one explorer at a time
  SetScheduleHooks(this);
}

ScheduleExplorer::~ScheduleExplorer() {
  SetScheduleHooks(nullptr);
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  KLINK_CHECK(self != nullptr && self == current_);  // destroy on "main"
  for (const auto& t : threads_) {
    // Every worker must have ended (the executor destructor quiesces
    // before joining); a straggler here would dangle into freed state.
    KLINK_CHECK(t.get() == self || t->run == Run::kEnded);
  }
  self->run = Run::kEnded;
  current_ = nullptr;
}

int64_t ScheduleExplorer::BasePriority(const std::string& name) const {
  // Keyed by the thread's *name*, not registration order: the same seed
  // gives the same priorities no matter how OS timing orders thread
  // startup. Positive, so demoted priorities (negative) rank below all.
  uint64_t rng = config_.seed ^ Fnv1aString(name);
  return static_cast<int64_t>(SplitMix64(rng) >> 1) | 1;
}

ScheduleExplorer::Thread* ScheduleExplorer::SelfLocked() {
  const auto it = by_os_id_.find(std::this_thread::get_id());
  return it == by_os_id_.end() ? nullptr : it->second;
}

bool ScheduleExplorer::RunnableLocked(const Thread& t) const {
  switch (t.run) {
    case Run::kReady:
      return true;
    case Run::kBlockedMutex: {
      const auto it = owner_.find(t.wants);
      return it == owner_.end() || it->second == nullptr;
    }
    case Run::kQuiescing:
      for (const auto& u : threads_) {
        if (u.get() != &t && u->run != Run::kEnded) return false;
      }
      return true;
    case Run::kRunning:
    case Run::kParkedCv:
    case Run::kEnded:
      return false;
  }
  return false;
}

void ScheduleExplorer::StepLocked(Thread* self, const char* kind,
                                  const char* detail) {
  ++steps_;
  bool demoted = false;
  if (!demote_steps_.empty() && demote_steps_.back() == steps_) {
    demote_steps_.pop_back();
    self->priority = next_demoted_priority_--;
    demoted = true;
  }
  char line[160];
  std::snprintf(line, sizeof(line), "#%" PRIu64 " %s %s(%s)%s", steps_,
                self->name.c_str(), kind, detail,
                demoted ? " [demoted]" : "");
  const size_t cap = config_.record_trace ? config_.max_trace : 64;
  if (trace_.size() >= cap) {
    trace_.erase(trace_.begin(),
                 trace_.begin() + static_cast<ptrdiff_t>(cap / 2 + 1));
  }
  trace_.emplace_back(line);
}

void ScheduleExplorer::PickNextLocked() {
  Thread* best = nullptr;
  for (const auto& t : threads_) {
    if (!RunnableLocked(*t)) continue;
    if (best == nullptr || t->priority > best->priority ||
        (t->priority == best->priority &&
         (t->name < best->name ||
          (t->name == best->name && t->index < best->index)))) {
      best = t.get();
    }
  }
  if (best != nullptr) {
    current_ = best;
    best->cv.notify_one();
    return;
  }
  for (const auto& t : threads_) {
    if (t->run != Run::kEnded) DeadlockAbortLocked();
  }
  current_ = nullptr;  // everything ended (explorer teardown)
}

void ScheduleExplorer::WaitForTurnLocked(std::unique_lock<std::mutex>& lock,
                                         Thread* self) {
  while (current_ != self) self->cv.wait(lock);
}

void ScheduleExplorer::RescheduleLocked(std::unique_lock<std::mutex>& lock,
                                        Thread* self, const char* kind,
                                        const char* detail) {
  StepLocked(self, kind, detail);
  self->run = Run::kReady;
  PickNextLocked();
  WaitForTurnLocked(lock, self);
  self->run = Run::kRunning;
}

void ScheduleExplorer::DeadlockAbortLocked() {
  std::fprintf(stderr,
               "klink: schedule explorer DEADLOCK (seed %" PRIu64
               ", step %" PRIu64 ") — no runnable thread:\n",
               config_.seed, steps_);
  for (const auto& t : threads_) {
    std::fprintf(stderr, "  thread %-12s %-13s prio=%lld%s%s\n",
                 t->name.c_str(), RunName(static_cast<int>(t->run)),
                 static_cast<long long>(t->priority),
                 t->wants != nullptr ? " wants=" : "",
                 t->wants != nullptr ? t->wants->name() : "");
  }
  for (const auto& [mu, holder] : owner_) {
    if (holder != nullptr) {
      std::fprintf(stderr, "  mutex %-14s held by %s\n", mu->name(),
                   holder->name.c_str());
    }
  }
  const size_t from = trace_.size() > 60 ? trace_.size() - 60 : 0;
  for (size_t i = from; i < trace_.size(); ++i) {
    std::fprintf(stderr, "  %s\n", trace_[i].c_str());
  }
  KLINK_CHECK(false && "schedule explorer deadlock");
  std::abort();  // unreachable; KLINK_CHECK aborts
}

void ScheduleExplorer::AwaitParticipants(int live) {
  std::unique_lock<std::mutex> lock(m_);
  KLINK_CHECK(SelfLocked() == current_);  // only the token holder may wait
  // Test-only watchdog for a worker that never registers; virtual time
  // cannot advance while we block here, so real time is the only clock
  // that can bound the wait.
  const auto deadline =  // klink-lint: allow(determinism): watchdog
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    int count = 0;
    for (const auto& t : threads_) count += t->run != Run::kEnded;
    if (count >= live) return;
    KLINK_CHECK(participants_cv_.wait_until(lock, deadline) !=
                std::cv_status::timeout);
  }
}

uint64_t ScheduleExplorer::steps() const {
  std::unique_lock<std::mutex> lock(m_);
  return steps_;
}

std::vector<std::string> ScheduleExplorer::TakeTrace() {
  std::unique_lock<std::mutex> lock(m_);
  std::vector<std::string> out;
  out.swap(trace_);
  return out;
}

void ScheduleExplorer::ThreadBegin(const char* name) {
  std::unique_lock<std::mutex> lock(m_);
  auto t = std::make_unique<Thread>();
  t->name = name;
  t->priority = BasePriority(t->name);
  t->run = Run::kReady;
  t->os_id = std::this_thread::get_id();
  t->index = static_cast<int>(threads_.size());
  Thread* self = t.get();
  by_os_id_[t->os_id] = self;  // OS ids of ended threads were erased
  threads_.push_back(std::move(t));
  participants_cv_.notify_all();
  if (current_ == nullptr) PickNextLocked();
  WaitForTurnLocked(lock, self);
  self->run = Run::kRunning;
}

void ScheduleExplorer::ThreadEnd() {
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  if (self == nullptr) return;
  StepLocked(self, "end", "");
  self->run = Run::kEnded;
  by_os_id_.erase(self->os_id);  // the OS may recycle the id
  if (current_ == self) PickNextLocked();
}

void ScheduleExplorer::Yield(const char* tag) {
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  if (self == nullptr) return;
  RescheduleLocked(lock, self, "yield", tag);
}

void ScheduleExplorer::LockAcquire(Mutex* mu) {
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  if (self == nullptr) return;
  StepLocked(self, "acquire", mu->name());
  self->run = Run::kBlockedMutex;
  self->wants = mu;
  PickNextLocked();
  WaitForTurnLocked(lock, self);
  // Granted only while `mu` is unowned (RunnableLocked), so the caller's
  // real lock below cannot contend against another participant.
  self->wants = nullptr;
  self->run = Run::kRunning;
  owner_[mu] = self;
}

void ScheduleExplorer::LockRelease(Mutex* mu) {
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  if (self == nullptr) return;
  const auto it = owner_.find(mu);
  if (it != owner_.end() && it->second == self) owner_.erase(it);
  RescheduleLocked(lock, self, "release", mu->name());
}

bool ScheduleExplorer::CvWait(void* cv, Mutex* mu) {
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  if (self == nullptr) return false;  // non-participant: real wait
  StepLocked(self, "cv-wait", mu->name());
  // Release the real mutex so the participant we switch to can take it;
  // park until a CvNotify makes us runnable again (as a blocked acquirer
  // of `mu` — the grant implies the mutex is free to reacquire).
  const auto it = owner_.find(mu);
  if (it != owner_.end() && it->second == self) owner_.erase(it);
  MutexRawAccess::RawUnlock(*mu);
  self->run = Run::kParkedCv;
  self->parked_on = cv;
  self->wants = mu;
  PickNextLocked();
  WaitForTurnLocked(lock, self);
  self->parked_on = nullptr;
  self->wants = nullptr;
  self->run = Run::kRunning;
  owner_[mu] = self;
  MutexRawAccess::RawLock(*mu);  // uncontended: participants are parked
  return true;
}

void ScheduleExplorer::CvNotify(void* cv) {
  std::unique_lock<std::mutex> lock(m_);
  // Wake every waiter (for notify_one too): spurious wakeups are allowed
  // by the Wait contract, and waking all explores strictly more
  // schedules. Woken threads become blocked acquirers of their mutex.
  for (const auto& t : threads_) {
    if (t->run == Run::kParkedCv && t->parked_on == cv) {
      t->run = Run::kBlockedMutex;
      t->parked_on = nullptr;
    }
  }
  Thread* self = SelfLocked();
  if (self != nullptr) {
    RescheduleLocked(lock, self, "notify", "");
  } else if (current_ == nullptr) {
    PickNextLocked();
  }
}

void ScheduleExplorer::Quiesce() {
  std::unique_lock<std::mutex> lock(m_);
  Thread* self = SelfLocked();
  if (self == nullptr) return;
  StepLocked(self, "quiesce", "");
  self->run = Run::kQuiescing;
  PickNextLocked();
  WaitForTurnLocked(lock, self);
  self->run = Run::kRunning;
}

}  // namespace klink
