#ifndef KLINK_RUNTIME_THREAD_POOL_EXECUTOR_H_
#define KLINK_RUNTIME_THREAD_POOL_EXECUTOR_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/executor.h"

namespace klink {

/// Real-thread backend: one persistent std::thread per slot. Each cycle
/// the engine thread publishes the task list, wakes the workers, and
/// blocks on the cycle barrier until every slot with work has drained its
/// query; counters are then merged in slot order on the engine thread.
///
/// Safety: tasks carry distinct queries and each Query owns its operators
/// and queues, so workers never share mutable state within a cycle. All
/// engine-side bookkeeping (ingest, snapshot, policy, metrics, the virtual
/// clock) stays on the engine thread between barriers, which is what lets
/// this backend reproduce the sequential backend's results bit for bit.
class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(int num_slots);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  std::string name() const override { return "threads"; }
  int num_slots() const override {
    return static_cast<int>(contexts_.size());
  }
  const ExecutionContext& context(int slot) const override;

  CycleStats ExecuteCycle(const std::vector<ExecutorTask>& tasks,
                          double cost_multiplier,
                          TimeMicros cycle_start) override;

 private:
  void WorkerLoop(int slot);

  std::vector<ExecutionContext> contexts_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // engine -> workers: cycle published
  std::condition_variable done_cv_;   // workers -> engine: barrier reached
  // All fields below are guarded by mu_.
  const std::vector<ExecutorTask>* tasks_ = nullptr;
  double cost_multiplier_ = 1.0;
  TimeMicros cycle_start_ = 0;
  uint64_t cycle_seq_ = 0;
  /// Slot range [group_begin_, group_end_) of the published stage group:
  /// a cycle's tasks arrive stage-sorted and are executed as one barrier
  /// group per maximal equal-stage run, so a consumer lane never runs
  /// concurrently with the producer lane that feeds its queues.
  size_t group_begin_ = 0;
  size_t group_end_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace klink

#endif  // KLINK_RUNTIME_THREAD_POOL_EXECUTOR_H_
