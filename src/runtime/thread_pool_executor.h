#ifndef KLINK_RUNTIME_THREAD_POOL_EXECUTOR_H_
#define KLINK_RUNTIME_THREAD_POOL_EXECUTOR_H_

#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/runtime/executor.h"

namespace klink {

/// Real-thread backend: one persistent std::thread per slot. Each cycle
/// the engine thread publishes the task list, wakes the workers, and
/// blocks on the cycle barrier until every slot with work has drained its
/// query; counters are then merged in slot order on the engine thread.
///
/// Safety: tasks carry distinct queries and each Query owns its operators
/// and queues, so workers never share mutable state within a cycle. All
/// engine-side bookkeeping (ingest, snapshot, policy, metrics, the virtual
/// clock) stays on the engine thread between barriers, which is what lets
/// this backend reproduce the sequential backend's results bit for bit.
/// The handshake fields below are the only cross-thread state, and every
/// one of them is KLINK_GUARDED_BY(mu_) — a clang -Wthread-safety build
/// proves no access escapes the lock.
class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(int num_slots);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  std::string name() const override { return "threads"; }
  int num_slots() const override {
    return static_cast<int>(contexts_.size());
  }
  const ExecutionContext& context(int slot) const override;

  CycleStats ExecuteCycle(const std::vector<ExecutorTask>& tasks,
                          double cost_multiplier,
                          TimeMicros cycle_start) override;

 private:
  void WorkerLoop(int slot);

  /// Per-slot contexts are cross-thread but not mu_-guarded: slot i is
  /// written only by worker i between the publish and the barrier, and
  /// read only by the engine thread after the barrier; the mu_-guarded
  /// remaining_ handshake orders those accesses (DESIGN.md "Static
  /// analysis & schedule exploration").
  std::vector<ExecutionContext> contexts_;
  std::vector<std::thread> threads_;

  Mutex mu_{"tpe.mu"};
  CondVar work_cv_;   // engine -> workers: cycle published
  CondVar done_cv_;   // workers -> engine: barrier reached
  const std::vector<ExecutorTask>* tasks_ KLINK_GUARDED_BY(mu_) = nullptr;
  double cost_multiplier_ KLINK_GUARDED_BY(mu_) = 1.0;
  TimeMicros cycle_start_ KLINK_GUARDED_BY(mu_) = 0;
  uint64_t cycle_seq_ KLINK_GUARDED_BY(mu_) = 0;
  /// Slot range [group_begin_, group_end_) of the published stage group:
  /// a cycle's tasks arrive stage-sorted and are executed as one barrier
  /// group per maximal equal-stage run, so a consumer lane never runs
  /// concurrently with the producer lane that feeds its queues.
  size_t group_begin_ KLINK_GUARDED_BY(mu_) = 0;
  size_t group_end_ KLINK_GUARDED_BY(mu_) = 0;
  int remaining_ KLINK_GUARDED_BY(mu_) = 0;
  bool shutdown_ KLINK_GUARDED_BY(mu_) = false;
};

}  // namespace klink

#endif  // KLINK_RUNTIME_THREAD_POOL_EXECUTOR_H_
