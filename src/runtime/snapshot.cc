#include "src/runtime/snapshot.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/window/swm_tracker.h"

namespace klink {

const QueryInfo* RuntimeSnapshot::Find(QueryId id) const {
  if (!index.empty()) {
    const auto it = index.find(id);
    if (it == index.end()) return nullptr;
    return &queries[static_cast<size_t>(it->second)];
  }
  for (const QueryInfo& info : queries) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

void CollectQueryInfo(const Query& query, TimeMicros now, QueryInfo* info) {
  KLINK_CHECK(info != nullptr);
  info->id = query.id();
  info->query = &query;
  info->deploy_time = query.deploy_time();
  info->upcoming_deadline = query.UpcomingDeadline();

  const int n = query.num_operators();
  info->op_queued.assign(static_cast<size_t>(n), 0);
  info->op_selectivity.assign(static_cast<size_t>(n), 1.0);
  info->op_cost.assign(static_cast<size_t>(n), 0.0);
  info->op_windowed.assign(static_cast<size_t>(n), 0);
  info->op_partial.assign(static_cast<size_t>(n), 0);
  info->streams.clear();

  info->queued_events = 0;
  info->memory_bytes = 0;
  info->oldest_ingest = kNoTime;

  for (int i = 0; i < n; ++i) {
    const Operator& op = query.op(i);
    const size_t idx = static_cast<size_t>(i);
    info->op_queued[idx] = op.QueuedEvents();
    info->op_selectivity[idx] = op.selectivity();
    info->op_cost[idx] = op.cost_per_event();
    info->op_windowed[idx] = op.IsWindowed() ? 1 : 0;
    info->op_partial[idx] = op.SupportsPartialComputation() ? 1 : 0;
    info->queued_events += info->op_queued[idx];
    info->memory_bytes += op.MemoryBytes();
    for (int s = 0; s < op.num_inputs(); ++s) {
      const TimeMicros oldest = op.input(s).OldestIngestTime();
      if (oldest == kNoTime) continue;
      info->oldest_ingest = info->oldest_ingest == kNoTime
                                ? oldest
                                : std::min(info->oldest_ingest, oldest);
    }
    if (const SwmTracker* tracker = op.swm_tracker()) {
      for (int s = 0; s < tracker->num_streams(); ++s) {
        const SwmTracker::StreamStats& st = tracker->stream(s);
        StreamProgress progress;
        progress.op_index = i;
        progress.stream = s;
        progress.upcoming_deadline = op.UpcomingDeadline();
        progress.deadline_period = op.DeadlinePeriod();
        progress.epoch = st.epoch;
        progress.current_mu = st.current_delays.mean();
        progress.current_chi = st.current_delays.mean_sq();
        progress.current_count = st.current_delays.count();
        progress.last_mu = st.last_mu;
        progress.last_chi = st.last_chi;
        progress.has_finalized_epoch = st.has_finalized_epoch;
        progress.last_sweep_ingest = st.last_sweep_ingest;
        progress.last_swept_deadline = st.last_swept_deadline;
        info->streams.push_back(progress);
      }
    }
  }

  // Expected remaining end-to-end cost per element queued at each operator:
  // path_cost[i] = cost_i + selectivity_i * path_cost[downstream(i)].
  // Topological order means a reverse scan sees downstream before upstream.
  std::vector<double> path_cost(static_cast<size_t>(n), 0.0);
  for (int i = n - 1; i >= 0; --i) {
    const size_t idx = static_cast<size_t>(i);
    const int down = query.edge(i).downstream;
    const double tail =
        down == -1 ? 0.0 : path_cost[static_cast<size_t>(down)];
    path_cost[idx] = info->op_cost[idx] + info->op_selectivity[idx] * tail;
  }

  // cost^q(t): drain cost of everything currently queued (Sec. 3), and the
  // ideal unit cost of one source event (slowdown denominator, Sec. 6.1.2).
  info->drain_cost_micros = 0.0;
  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    info->drain_cost_micros +=
        static_cast<double>(info->op_queued[idx]) * path_cost[idx];
  }

  // Refire debt: correction elements pending at windowed operators are not
  // queued anywhere yet, but will be emitted at the next watermark and must
  // drain through the emitting operator's downstream path before the sweep
  // completes.
  std::vector<double> op_refire_debt(static_cast<size_t>(n), 0.0);
  info->refire_debt_micros = 0.0;
  for (int i = 0; i < n; ++i) {
    const int64_t refires = query.op(i).PendingRefires();
    if (refires <= 0) continue;
    const int down = query.edge(i).downstream;
    const double tail =
        down == -1 ? 0.0 : path_cost[static_cast<size_t>(down)];
    const size_t idx = static_cast<size_t>(i);
    op_refire_debt[idx] = static_cast<double>(refires) * tail;
    info->refire_debt_micros += op_refire_debt[idx];
  }
  // Schedulable units. Unsharded queries expose a single whole-query lane
  // (-1) mirroring the aggregates above, so lane-iterating policies keep
  // pre-sharding behavior bit for bit. Sharded queries get one LaneInfo
  // per Query::Lane, aggregated over the lane's contiguous op range; the
  // lanes partition [0, n) in op order, so stream subranges are found by
  // a single monotone sweep over the op-ordered `streams` vector.
  info->lanes.clear();
  if (!query.sharded()) {
    LaneInfo lane;
    lane.lane = -1;
    lane.stage = 0;
    lane.queued_events = info->queued_events;
    lane.oldest_ingest = info->oldest_ingest;
    lane.drain_cost_micros = info->drain_cost_micros;
    lane.refire_debt_micros = info->refire_debt_micros;
    lane.streams_begin = 0;
    lane.streams_end = static_cast<int>(info->streams.size());
    info->lanes.push_back(lane);
  } else {
    int stream_pos = 0;
    for (int l = 0; l < query.num_lanes(); ++l) {
      const Query::Lane& ql = query.lane(l);
      LaneInfo lane;
      lane.lane = l;
      lane.stage = ql.stage;
      lane.streams_begin = stream_pos;
      for (int i = ql.begin; i < ql.end; ++i) {
        const size_t idx = static_cast<size_t>(i);
        lane.queued_events += info->op_queued[idx];
        lane.drain_cost_micros +=
            static_cast<double>(info->op_queued[idx]) * path_cost[idx];
        lane.refire_debt_micros += op_refire_debt[idx];
        const Operator& op = query.op(i);
        for (int s = 0; s < op.num_inputs(); ++s) {
          const TimeMicros oldest = op.input(s).OldestIngestTime();
          if (oldest == kNoTime) continue;
          lane.oldest_ingest = lane.oldest_ingest == kNoTime
                                   ? oldest
                                   : std::min(lane.oldest_ingest, oldest);
        }
      }
      while (stream_pos < static_cast<int>(info->streams.size()) &&
             info->streams[static_cast<size_t>(stream_pos)].op_index <
                 ql.end) {
        ++stream_pos;
      }
      lane.streams_end = stream_pos;
      info->lanes.push_back(lane);
    }
  }

  double unit_cost = 0.0;
  for (const SourceOperator* src : query.sources()) {
    // Locate the source's operator index to read its path cost.
    for (int i = 0; i < n; ++i) {
      if (&query.op(i) == src) {
        unit_cost = std::max(unit_cost, path_cost[static_cast<size_t>(i)]);
        break;
      }
    }
  }
  info->unit_cost_micros = unit_cost;

  // HR priority [48]: global output rate of the pipeline — the product of
  // selectivities (output events per source event) over the total per-event
  // processing cost.
  double sel_product = 1.0;
  double cost_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    // Terminal (sink) operators emit nothing by definition; their measured
    // selectivity of zero must not nullify the path productivity. The
    // *declared* selectivities are used so the rate reflects the query
    // plan, as in [48], rather than transient runtime noise.
    if (query.edge(i).downstream != -1) {
      sel_product *= std::clamp(query.op(i).selectivity_hint(), 0.0, 1.0);
    }
    cost_sum += info->op_cost[idx];
  }
  info->output_rate = cost_sum <= 0.0 ? 0.0 : sel_product / cost_sum;

  (void)now;
}

}  // namespace klink
