#ifndef KLINK_RUNTIME_QUERY_FABRIC_H_
#define KLINK_RUNTIME_QUERY_FABRIC_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/query/query.h"
#include "src/runtime/event_feed.h"

namespace klink {

/// Lifecycle of one attached query.
enum class QueryState {
  kActive,    ///< ingesting (when it has a feed) and schedulable
  kDraining,  ///< detach requested: feed dropped, runs until queues empty
  kDetached,  ///< retired: stats readable, no longer scheduled
  kUnknown,   ///< id never attached to this fabric
};

/// A named ingest endpoint: events routed to `name` land on source
/// operator `source_index` of query `query`.
struct EndpointBinding {
  QueryId query = -1;
  int source_index = 0;
};

/// The engine's query control plane: the mutable set of deployed queries,
/// supporting live attach/detach/rewire while traffic flows (DESIGN.md
/// "Query fabric & incremental scheduling").
///
/// Replaces the wired-up-front Engine::queries_ vector (whose removals
/// left tombstones that every per-cycle loop still visited) with a slot
/// table:
///
///  - Attach allocates the lowest free slot and stamps the query with a
///    generation-stamped QueryId (common/types.h): ids are never reused,
///    so a stale id held across a detach resolves to kDetached/kUnknown
///    instead of aliasing a newer tenant in the same slot.
///  - Detach is graceful by default: the feed is dropped immediately but
///    the query keeps its scheduling eligibility until its queues drain
///    (in-flight elements — including checkpoint barriers — are processed,
///    not discarded). kImmediate discards queued elements, matching the
///    old RemoveQuery semantics.
///  - Detached queries are retained (not freed): their sinks' recorded
///    statistics stay readable via Find(), exactly as RemoveQuery
///    guaranteed before.
///  - Named endpoints route external streams to (query, source) pairs and
///    can be rewired live; bindings of a retiring query drop atomically
///    with it.
///
/// The fabric is also the engine's change journal: every mutation that can
/// alter a query's runtime snapshot marks the query dirty, and the engine
/// consumes the dirty set once per cycle to refresh only the changed
/// QueryInfo entries — the seam that makes snapshot maintenance and
/// scheduling O(changed) instead of O(queries) (see sched/policy.h).
class QueryFabric {
 public:
  enum class DetachMode {
    kDrain,      ///< stop ingest, process remaining queued work, then retire
    kImmediate,  ///< stop ingest and discard queued elements now
  };

  /// One live slot's view handed to engine loops.
  struct LiveQuery {
    QueryId id = -1;
    Query* query = nullptr;
    EventFeed* feed = nullptr;  // null while draining or for manual tests
    TimeMicros deploy_time = 0;
  };

  QueryFabric();

  QueryFabric(const QueryFabric&) = delete;
  QueryFabric& operator=(const QueryFabric&) = delete;
  ~QueryFabric();

  /// Attaches a query: allocates a slot, stamps the generation id onto the
  /// query, and marks it dirty. `feed` may be null (manually driven).
  QueryId Attach(std::unique_ptr<Query> query, std::unique_ptr<EventFeed> feed,
                 TimeMicros deploy_time);

  /// Begins (kDrain) or completes (kImmediate) a detach. Draining queries
  /// retire via SweepDrained once empty. No-op on non-live ids.
  void Detach(QueryId id, DetachMode mode);

  /// Retires draining queries whose queues are empty, appending each
  /// retired query to `retired` (the engine notifies the checkpoint
  /// coordinator and the snapshot journal). O(1) when nothing is
  /// draining — safe to call every cycle.
  void SweepDrained(std::vector<QueryId>* retired);

  /// ---- lookup ---------------------------------------------------------
  QueryState state(QueryId id) const;
  /// True while the query is schedulable (active or draining).
  bool IsLive(QueryId id) const;
  /// Live or retired query, nullptr for unknown ids.
  Query* Find(QueryId id);
  const Query* Find(QueryId id) const;

  int live_count() const { return live_count_; }
  int draining_count() const { return draining_; }
  /// Queries ever attached (diagnostics; includes retired ones).
  int64_t attached_total() const { return attached_total_; }

  /// Retired queries in ascending id order (deterministic iteration for
  /// aggregate statistics that fold over all queries ever deployed).
  const std::map<QueryId, std::unique_ptr<Query>>& retired() const {
    return retired_;
  }

  /// Live queries in slot order (== attach order for a fixed set). The
  /// span is rebuilt lazily after churn; steady-state calls are O(1).
  const std::vector<LiveQuery>& live() const;

  /// Live queries with a non-null feed, in slot order (the engine's ingest
  /// loop walks only these — idle tenants cost nothing per cycle).
  const std::vector<LiveQuery>& fed() const;

  /// ---- named endpoints / stream routing -------------------------------
  /// Binds (or rewires) `name` to source `source_index` of `id`. The query
  /// must be live and the source index in range.
  void BindEndpoint(const std::string& name, QueryId id, int source_index);
  /// Drops one binding (no-op when absent).
  void UnbindEndpoint(const std::string& name);
  /// Resolves a name, or nullptr when unbound. A binding whose query has
  /// retired resolves to nullptr (and is lazily dropped).
  const EndpointBinding* ResolveEndpoint(const std::string& name) const;
  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }

  /// ---- change journal -------------------------------------------------
  /// Marks one query's runtime state changed (ingest, execution, barrier,
  /// state restore). Live ids only; others are ignored.
  void MarkDirty(QueryId id);
  /// Marks every live query dirty (barrier injection, restore, MM mode).
  void MarkAllDirty();
  /// Drains the journal accumulated since the previous call: ids whose
  /// QueryInfo must be re-collected, and ids retired since then. Ids are
  /// in deterministic (slot, generation) order.
  void TakeJournal(std::vector<QueryId>* touched,
                   std::vector<QueryId>* detached);

  /// KLINK_AUDIT=1 invariant check (also callable from tests): endpoint
  /// targets are live, dirty marks refer to live queries, the live count
  /// matches a full scan, and retired ids never alias a live slot
  /// generation. Aborts on the first violation.
  void AuditConsistency() const;

 private:
  /// Lets corruption-injection death tests plant inconsistencies to prove
  /// AuditConsistency detects them. Test-only.
  friend class QueryFabricTestPeer;

  struct Slot {
    std::unique_ptr<Query> query;
    std::unique_ptr<EventFeed> feed;
    TimeMicros deploy_time = 0;
    int32_t generation = 0;  // bumped when the slot is freed
    QueryState state = QueryState::kUnknown;
    bool dirty = false;
  };

  Slot* LiveSlot(QueryId id);
  const Slot* LiveSlot(QueryId id) const;
  void Retire(int32_t slot_index);
  void InvalidateViews() { views_valid_ = false; }
  void RebuildViews() const;

  std::vector<Slot> slots_;
  /// Free slot indices, ascending (lowest slot reused first, so ids stay
  /// small and deterministic).
  std::vector<int32_t> free_slots_;
  /// Retired queries, retained for stats (id -> query). Ordered so
  /// aggregate folds over them are deterministic.
  std::map<QueryId, std::unique_ptr<Query>> retired_;

  int live_count_ = 0;
  int draining_ = 0;
  int64_t attached_total_ = 0;

  std::unordered_map<std::string, EndpointBinding> endpoints_;

  std::vector<QueryId> journal_touched_;
  std::vector<QueryId> journal_detached_;

  /// Cached slot-order views, invalidated by attach/retire and rebuilt
  /// lazily on access (mutable: a logically-const cache).
  mutable std::vector<LiveQuery> live_view_;
  mutable std::vector<LiveQuery> fed_view_;
  mutable bool views_valid_ = false;

  /// Sampled from KLINK_AUDIT once at construction.
  const bool audit_;
};

}  // namespace klink

#endif  // KLINK_RUNTIME_QUERY_FABRIC_H_
