#ifndef KLINK_RUNTIME_SNAPSHOT_H_
#define KLINK_RUNTIME_SNAPSHOT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/query/query.h"

namespace klink {

/// Progress of one input stream of one windowed operator, extracted from
/// its SwmTracker. One slack value is computed per StreamProgress and a
/// query's slack is the minimum over its streams (Sec. 3.3).
struct StreamProgress {
  /// Operator index within the query and input stream on that operator.
  int op_index = 0;
  int stream = 0;
  /// The operator's earliest un-fired window deadline.
  TimeMicros upcoming_deadline = kNoTime;
  /// Period between deadlines (assigner slide) — the SWM periodicity hint.
  DurationMicros deadline_period = 0;
  /// Completed epochs on this stream.
  int64_t epoch = 0;
  /// Open-epoch delay statistics (population D_n, Eqs. 3-4 first case).
  double current_mu = 0.0;
  double current_chi = 0.0;
  int64_t current_count = 0;
  /// Most recently finalized epoch statistics.
  double last_mu = 0.0;
  double last_chi = 0.0;
  bool has_finalized_epoch = false;
  /// Ingestion time of the watermark that closed the last epoch, and the
  /// deadline it swept.
  TimeMicros last_sweep_ingest = kNoTime;
  TimeMicros last_swept_deadline = kNoTime;
};

/// One schedulable unit of a query. Unsharded queries expose exactly one
/// lane with index -1 whose fields mirror the query-level aggregates, so
/// policies that iterate lanes see pre-sharding behavior unchanged.
/// Sharded queries expose one lane per Query::Lane: the stage-0 prefix
/// (sources + partition exchanges), one lane per shard, and the stage-2
/// suffix (merge + sink). Shard-granular policies rank and select these
/// independently; per-lane slack is the minimum over the lane's streams.
struct LaneInfo {
  /// Lane index usable with Selection::AddLane; -1 = whole query.
  int lane = -1;
  /// Pipeline stage (Query::Lane::stage); 0 for unsharded queries.
  int stage = 0;
  int64_t queued_events = 0;
  /// Ingestion time of the oldest element queued at the lane's operators.
  TimeMicros oldest_ingest = kNoTime;
  /// Expected virtual CPU time to drain the lane's queued events through
  /// the rest of the pipeline (the lane's share of drain_cost_micros).
  double drain_cost_micros = 0.0;
  /// The lane's share of QueryInfo::refire_debt_micros.
  double refire_debt_micros = 0.0;
  /// Subrange [streams_begin, streams_end) of QueryInfo::streams holding
  /// this lane's window progress entries. Contiguous because lanes cover
  /// contiguous operator ranges and streams are collected in op order.
  int streams_begin = 0;
  int streams_end = 0;
};

/// Everything the runtime data acquisition module reports about one query —
/// the per-query slice of the tuple I consumed by KlinkEvaluator (Sec. 3)
/// and by the baseline policies.
struct QueryInfo {
  QueryId id = -1;
  /// Read-only view: the snapshot is consumed by policies (and, with the
  /// thread-pool executor, potentially inspected while workers are parked
  /// at the cycle barrier), so nothing downstream may mutate the query.
  const Query* query = nullptr;
  TimeMicros deploy_time = 0;
  /// Earliest upcoming window deadline across the query's windowed
  /// operators, kNoTime for windowless queries.
  TimeMicros upcoming_deadline = kNoTime;
  int64_t queued_events = 0;
  int64_t memory_bytes = 0;
  /// Ingestion time of the oldest queued element (FCFS), kNoTime if idle.
  TimeMicros oldest_ingest = kNoTime;
  /// cost^q(t): expected virtual CPU time to drain all queued events
  /// end-to-end, combining per-operator cost and selectivity (Sec. 3).
  double drain_cost_micros = 0.0;
  /// Pending-refire debt (allowed lateness, window/lateness.h): expected
  /// virtual CPU cost of the retraction+update correction elements that
  /// windowed operators will emit at their next watermark — invisible to
  /// queue-based drain cost until emission, yet certain to precede the
  /// sweep. Klink folds it into the drain cost when
  /// KlinkPolicyConfig::refire_debt_correction is on.
  double refire_debt_micros = 0.0;
  /// Expected end-to-end cost of a single source event (the ideal
  /// processing time used by the slowdown metric, Sec. 6.1.2).
  double unit_cost_micros = 0.0;
  /// HR priority: output productivity per unit processing time [48],
  /// scaled by how much of a scheduling quantum the queued work can fill
  /// (an empty path produces no output no matter its rate).
  double output_rate = 0.0;
  /// Per-stream window progress entries (empty for windowless queries).
  std::vector<StreamProgress> streams;
  /// Schedulable units: one {-1} entry for unsharded queries, one entry
  /// per Query::Lane for sharded ones.
  std::vector<LaneInfo> lanes;
  /// Per-operator arrays in topological order (for the memory manager).
  std::vector<int64_t> op_queued;
  std::vector<double> op_selectivity;
  std::vector<double> op_cost;
  std::vector<uint8_t> op_windowed;
  std::vector<uint8_t> op_partial;
};

/// The tuple I for all deployed queries at a scheduling cycle boundary.
struct RuntimeSnapshot {
  TimeMicros now = 0;
  /// Engine memory usage / capacity.
  double memory_utilization = 0.0;
  bool backpressured = false;
  std::vector<QueryInfo> queries;

  /// Incremental-maintenance journal, set by engine-built snapshots (the
  /// snapshot object persists across cycles and only changed entries are
  /// re-collected; see Engine::BuildSnapshot). When `incremental` is true:
  ///  - entries for queries NOT listed in `touched` are bitwise-identical
  ///    to the previous cycle's snapshot (CollectQueryInfo does not depend
  ///    on `now`, so an untouched query's info cannot change);
  ///  - `touched` holds the ids refreshed this cycle, including newly
  ///    attached queries, in ascending id order;
  ///  - `detached` holds ids removed since the previous cycle, ascending.
  /// Policies exploit this to keep per-cycle work O(touched) instead of
  /// O(queries) (klink/klink_policy.cc, sched/fcfs_policy.cc). Hand-built
  /// snapshots leave `incremental` false and policies fall back to a full
  /// scan, so the flag never changes *what* is selected — only the cost.
  bool incremental = false;
  std::vector<QueryId> touched;
  std::vector<QueryId> detached;
  /// id -> position in `queries`, maintained by the engine. May be empty
  /// for hand-built snapshots; Find falls back to a linear scan then.
  std::unordered_map<QueryId, int32_t> index;

  /// Entry for `id`, or nullptr when absent.
  const QueryInfo* Find(QueryId id) const;
};

/// Fills `info` from the live query state at virtual time `now`. Reads
/// exclusively through const accessors — data acquisition must never
/// perturb the state it observes.
void CollectQueryInfo(const Query& query, TimeMicros now, QueryInfo* info);

}  // namespace klink

#endif  // KLINK_RUNTIME_SNAPSHOT_H_
