#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace klink {
namespace {

std::string Errno(const char* what) {
  // strerror's static buffer is fine here: error formatting happens on
  // the one thread that owns the failing socket.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<int> ListenTcp(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Status::Internal(Errno("bind"));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    CloseFd(fd);
    return Status::Internal(Errno("listen"));
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      CloseFd(fd);
      return Status::Internal(Errno("getsockname"));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    CloseFd(fd);
    return Status::Internal(Errno("connect"));
  }
  SetNoDelay(fd);
  return fd;
}

StatusOr<int> AcceptNonBlocking(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
    return Status::Internal(Errno("accept"));
  }
  if (Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  SetNoDelay(fd);
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status SendAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

StatusOr<int64_t> ReadSomeFlags(int fd, uint8_t* buf, size_t len,
                                int flags) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, flags);
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return int64_t{-1};
    return Status::Internal(Errno("recv"));
  }
}

}  // namespace

StatusOr<int64_t> ReadSome(int fd, uint8_t* buf, size_t len) {
  return ReadSomeFlags(fd, buf, len, 0);
}

StatusOr<int64_t> ReadSomeNonBlocking(int fd, uint8_t* buf, size_t len) {
  return ReadSomeFlags(fd, buf, len, MSG_DONTWAIT);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace klink
