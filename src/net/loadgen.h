#ifndef KLINK_NET_LOADGEN_H_
#define KLINK_NET_LOADGEN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/event/event.h"
#include "src/runtime/event_feed.h"

namespace klink {

struct LoadgenStats {
  int64_t data_events_sent = 0;
  int64_t frames_sent = 0;
  int64_t bytes_sent = 0;
  /// Successful re-dials after a lost connection.
  int64_t reconnects = 0;
  /// Retained frames re-sent after reconnects (replay overlap the server
  /// dedups by sequence number).
  int64_t replayed_frames = 0;
  /// Frames skipped because the server already had them (HELLO_ACK said
  /// the stream's next expected seq is past them).
  int64_t skipped_frames = 0;
};

/// Connect/reconnect retry knobs: exponential backoff with jitter, capped.
struct RetryPolicy {
  /// Re-dial attempts after the first failure; 0 = fail immediately
  /// (the seed behavior).
  int max_retries = 0;
  DurationMicros initial_backoff = MillisToMicros(50);
  DurationMicros max_backoff = SecondsToMicros(2);
};

/// One client connection of the loadgen: connects, sends the hello binding
/// the connection to an ingest stream, then streams element frames with
/// write buffering. The socket is blocking on purpose: when the server
/// exercises credit-based backpressure and stops reading, TCP flow control
/// blocks the sender right here — end-to-end backpressure from the
/// engine's staging queue to the workload generator.
///
/// Exactly-once ingest (protocol v2): every element frame carries a
/// client-assigned per-stream sequence number, contiguous from 1. Sent
/// elements are retained until the server's CHECKPOINT_ACK covers their
/// seq (the checkpoint holding them is durable); on reconnect the server's
/// HELLO_ACK says which seq it expects next and the client replays its
/// retained tail from there — duplicates are dropped server-side, so a
/// crash between acks loses nothing and double-delivers nothing.
class LoadgenConnection {
 public:
  LoadgenConnection() = default;
  ~LoadgenConnection();

  LoadgenConnection(const LoadgenConnection&) = delete;
  LoadgenConnection& operator=(const LoadgenConnection&) = delete;

  /// Connects (retrying per `retry`), sends the kHello frame for
  /// `stream_id`, and waits for the server's HELLO_ACK. When the server
  /// already holds a prefix of the stream (this client restarted after a
  /// crash and is regenerating the same feed), subsequent SendEvent calls
  /// skip the prefix instead of re-sending it.
  Status Connect(const std::string& host, uint16_t port, uint32_t stream_id,
                 const RetryPolicy& retry = RetryPolicy{});

  /// Stamps the next sequence number, retains the element for replay, and
  /// buffers its frame; flushes when the buffer is full.
  Status SendEvent(const Event& e);

  /// Sends any buffered frames and opportunistically drains server acks.
  Status Flush();

  /// Flushes and sends the graceful end-of-stream frame.
  Status SendBye();

  /// Re-dials after a lost connection (backoff per `retry`), renegotiates
  /// the resume point via HELLO_ACK, and re-sends retained unacked
  /// elements the server is missing. The failed connection's buffered
  /// frames are covered by the retained replay.
  Status Reconnect(const RetryPolicy& retry);

  /// Drains CHECKPOINT_ACK frames without blocking and trims the retained
  /// buffer up to the durable prefix.
  Status PollAcks();

  void Close();
  bool connected() const { return fd_ >= 0; }
  const LoadgenStats& stats() const { return stats_; }

  /// Newest durable checkpoint epoch the server has acked (0 = none).
  uint64_t durable_epoch() const { return durable_epoch_; }
  /// Largest sequence number covered by a durable checkpoint.
  uint64_t acked_seq() const { return acked_seq_; }
  /// Sequence number the next SendEvent will assign.
  uint64_t next_seq() const { return next_seq_; }
  /// Elements retained for potential replay (sent but not yet durable).
  int64_t retained_events() const {
    return static_cast<int64_t>(retained_.size());
  }

 private:
  static constexpr size_t kFlushThresholdBytes = 32 * 1024;

  /// Dials with exponential backoff + jitter; sends hello, reads HELLO_ACK.
  Status DialAndGreet(const RetryPolicy& retry);
  /// Blocks until the server's HELLO_ACK (or error frame) arrives.
  Status ReadHelloAck();
  /// Decodes buffered inbound frames; handles acks.
  Status ConsumeInbound();

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  uint32_t stream_id_ = 0;
  uint64_t next_seq_ = 1;
  /// Server's next expected seq, from the latest HELLO_ACK: SendEvent
  /// skips (already-delivered) seqs below it.
  uint64_t resume_from_ = 1;
  uint64_t acked_seq_ = 0;
  uint64_t durable_epoch_ = 0;
  /// True once this connection's HELLO_ACK arrived. A Flush directly after
  /// the hello may drain it before ReadHelloAck runs, so receipt is
  /// recorded here rather than inferred from read order.
  bool hello_acked_ = false;
  /// Sent-but-not-durable elements, in seq order.
  std::deque<std::pair<uint64_t, Event>> retained_;
  std::vector<uint8_t> buf_;   // outbound frames pending flush
  std::vector<uint8_t> rbuf_;  // inbound bytes pending decode
  size_t roff_ = 0;
  LoadgenStats stats_;
};

struct ReplayOptions {
  /// Replay elements with ingest_time <= until.
  TimeMicros until = 0;
  /// 0 = unpaced (blast as fast as TCP accepts — loopback throughput
  /// tests); 1.0 = one virtual second per wall second (live replay);
  /// other values scale accordingly.
  double speed = 0.0;
  /// Pacing granularity (wall time between send bursts) when speed > 0.
  DurationMicros poll_step = MillisToMicros(20);
  /// Send kBye on every connection once the replay completes.
  bool send_bye = true;
  /// When a send fails mid-replay (server crashed), reconnect with this
  /// policy and resume from the retained buffer instead of giving up.
  /// max_retries = 0 keeps the old fail-fast behavior.
  RetryPolicy reconnect;
};

/// Replays a feed over TCP: element i of the feed targeting source s goes
/// to conns[s], in the feed's ingestion order. This is where the simulated
/// delay models are repurposed for real sockets — a SyntheticFeed built
/// with a DelayModel yields elements whose ingest_time already includes
/// the artificial per-connection network delay, so Fig-style
/// delayed-watermark experiments run unchanged over real TCP.
Status ReplayFeed(EventFeed& feed,
                  const std::vector<LoadgenConnection*>& conns,
                  const ReplayOptions& options);

}  // namespace klink

#endif  // KLINK_NET_LOADGEN_H_
