#ifndef KLINK_NET_LOADGEN_H_
#define KLINK_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/event/event.h"
#include "src/runtime/event_feed.h"

namespace klink {

struct LoadgenStats {
  int64_t data_events_sent = 0;
  int64_t frames_sent = 0;
  int64_t bytes_sent = 0;
};

/// One client connection of the loadgen: connects, sends the hello binding
/// the connection to an ingest stream, then streams element frames with
/// write buffering. The socket is blocking on purpose: when the server
/// exercises credit-based backpressure and stops reading, TCP flow control
/// blocks the sender right here — end-to-end backpressure from the
/// engine's staging queue to the workload generator.
class LoadgenConnection {
 public:
  LoadgenConnection() = default;
  ~LoadgenConnection();

  LoadgenConnection(const LoadgenConnection&) = delete;
  LoadgenConnection& operator=(const LoadgenConnection&) = delete;

  /// Connects and sends the kHello frame for `stream_id`.
  Status Connect(const std::string& host, uint16_t port, uint32_t stream_id);

  /// Buffers one element frame; flushes when the buffer is full.
  Status SendEvent(const Event& e);

  /// Sends any buffered frames.
  Status Flush();

  /// Flushes and sends the graceful end-of-stream frame.
  Status SendBye();

  void Close();
  bool connected() const { return fd_ >= 0; }
  const LoadgenStats& stats() const { return stats_; }

 private:
  static constexpr size_t kFlushThresholdBytes = 32 * 1024;

  int fd_ = -1;
  std::vector<uint8_t> buf_;
  LoadgenStats stats_;
};

struct ReplayOptions {
  /// Replay elements with ingest_time <= until.
  TimeMicros until = 0;
  /// 0 = unpaced (blast as fast as TCP accepts — loopback throughput
  /// tests); 1.0 = one virtual second per wall second (live replay);
  /// other values scale accordingly.
  double speed = 0.0;
  /// Pacing granularity (wall time between send bursts) when speed > 0.
  DurationMicros poll_step = MillisToMicros(20);
  /// Send kBye on every connection once the replay completes.
  bool send_bye = true;
};

/// Replays a feed over TCP: element i of the feed targeting source s goes
/// to conns[s], in the feed's ingestion order. This is where the simulated
/// delay models are repurposed for real sockets — a SyntheticFeed built
/// with a DelayModel yields elements whose ingest_time already includes
/// the artificial per-connection network delay, so Fig-style
/// delayed-watermark experiments run unchanged over real TCP.
Status ReplayFeed(EventFeed& feed,
                  const std::vector<LoadgenConnection*>& conns,
                  const ReplayOptions& options);

}  // namespace klink

#endif  // KLINK_NET_LOADGEN_H_
