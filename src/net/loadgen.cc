#include "src/net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "src/common/check.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace klink {
namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // klink-lint: allow(determinism): paces real TCP replay against wall time
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Backoff with jitter: sleep a uniform-ish duration in [b/2, b], so a
/// fleet of clients reconnecting after a server restart doesn't stampede
/// in lockstep.
void BackoffSleep(DurationMicros backoff) {
  const DurationMicros half = std::max<DurationMicros>(1, backoff / 2);
  const DurationMicros jitter = WallMicros() % (half + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(half + jitter));
}

}  // namespace

LoadgenConnection::~LoadgenConnection() { Close(); }

Status LoadgenConnection::Connect(const std::string& host, uint16_t port,
                                  uint32_t stream_id,
                                  const RetryPolicy& retry) {
  KLINK_CHECK_EQ(fd_, -1);
  host_ = host;
  port_ = port;
  stream_id_ = stream_id;
  return DialAndGreet(retry);
}

Status LoadgenConnection::DialAndGreet(const RetryPolicy& retry) {
  DurationMicros backoff = std::max<DurationMicros>(1, retry.initial_backoff);
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= retry.max_retries; ++attempt) {
    if (attempt > 0) {
      BackoffSleep(backoff);
      backoff = std::min(backoff * 2,
                         std::max(retry.max_backoff, retry.initial_backoff));
    }
    StatusOr<int> fd = ConnectTcp(host_, port_);
    if (!fd.ok()) {
      last = fd.status();
      continue;
    }
    fd_ = fd.value();
    buf_.clear();
    rbuf_.clear();
    roff_ = 0;
    hello_acked_ = false;
    EncodeHello(stream_id_, &buf_);
    ++stats_.frames_sent;
    if (Status s = Flush(); !s.ok()) {
      Close();
      last = s;
      continue;
    }
    if (Status s = ReadHelloAck(); !s.ok()) {
      Close();
      last = s;
      continue;
    }
    return Status::Ok();
  }
  return last.ok() ? Status::Internal("connect failed") : last;
}

Status LoadgenConnection::ReadHelloAck() {
  uint8_t chunk[4096];
  while (true) {
    if (Status s = ConsumeInbound(); !s.ok()) return s;
    if (hello_acked_) return Status::Ok();
    const StatusOr<int64_t> n = ReadSome(fd_, chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      return Status::Internal("connection closed before hello ack");
    }
    if (n.value() < 0) continue;  // spurious wakeup on a blocking socket
    rbuf_.insert(rbuf_.end(), chunk,
                 chunk + static_cast<ptrdiff_t>(n.value()));
  }
}

Status LoadgenConnection::ConsumeInbound() {
  while (true) {
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r = DecodeFrame(rbuf_.data() + roff_,
                                       rbuf_.size() - roff_, &frame,
                                       &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r != DecodeResult::kOk) {
      return Status::Internal("undecodable frame from server");
    }
    roff_ += consumed;
    switch (frame.type) {
      case FrameType::kHelloAck:
        // The server's resume point: it has everything below next_seq, so
        // SendEvent skips that prefix and Reconnect replays from here.
        resume_from_ = frame.next_seq;
        hello_acked_ = true;
        break;
      case FrameType::kCheckpointAck:
        // Everything <= durable_seq survived into a durable checkpoint;
        // the retained tail before it can never be needed again.
        acked_seq_ = std::max(acked_seq_, frame.durable_seq);
        durable_epoch_ = std::max(durable_epoch_, frame.epoch);
        while (!retained_.empty() && retained_.front().first <= acked_seq_) {
          retained_.pop_front();
        }
        break;
      case FrameType::kError:
        return Status::Internal(
            "server error " +
            std::to_string(static_cast<int>(frame.error_code)) + ": " +
            frame.error_message);
      default:
        return Status::Internal("unexpected frame from server");
    }
  }
  if (roff_ == rbuf_.size()) {
    rbuf_.clear();
  } else if (roff_ > 0) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<ptrdiff_t>(roff_));
  }
  roff_ = 0;
  return Status::Ok();
}

Status LoadgenConnection::PollAcks() {
  if (fd_ < 0) return Status::Internal("not connected");
  uint8_t chunk[4096];
  while (true) {
    const StatusOr<int64_t> n = ReadSomeNonBlocking(fd_, chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() < 0) break;  // nothing pending
    if (n.value() == 0) return Status::Internal("connection closed by server");
    rbuf_.insert(rbuf_.end(), chunk,
                 chunk + static_cast<ptrdiff_t>(n.value()));
  }
  return ConsumeInbound();
}

Status LoadgenConnection::SendEvent(const Event& e) {
  KLINK_CHECK_GE(fd_, 0);
  const uint64_t seq = next_seq_++;
  // Retain before any send attempt: a send that dies mid-frame is replayed
  // from here after reconnect.
  retained_.emplace_back(seq, e);
  if (seq < resume_from_) {
    // The server already holds this element (a restarted client is
    // regenerating a stream whose prefix survived): skip the bytes, keep
    // the retention until a checkpoint ack covers it.
    ++stats_.skipped_frames;
    return Status::Ok();
  }
  EncodeEvent(e, seq, &buf_);
  ++stats_.frames_sent;
  if (e.is_data()) ++stats_.data_events_sent;
  if (buf_.size() >= kFlushThresholdBytes) return Flush();
  return Status::Ok();
}

Status LoadgenConnection::Flush() {
  if (!buf_.empty()) {
    const Status s = SendAll(fd_, buf_.data(), buf_.size());
    if (s.ok()) stats_.bytes_sent += static_cast<int64_t>(buf_.size());
    buf_.clear();
    if (!s.ok()) return s;
  }
  // Ack frames arrive asynchronously; drain them here so the retained
  // buffer stays bounded by the checkpoint interval, not the run length.
  return PollAcks();
}

Status LoadgenConnection::SendBye() {
  EncodeBye(&buf_);
  ++stats_.frames_sent;
  const Status s = SendAll(fd_, buf_.data(), buf_.size());
  if (s.ok()) stats_.bytes_sent += static_cast<int64_t>(buf_.size());
  buf_.clear();
  if (!s.ok()) return s;
  // Drain until the server closes (it does so once it decodes the bye).
  // Closing first is not an option: SendAll only guarantees the bytes
  // reached our kernel buffer, and if we close while checkpoint acks sit
  // unread in our receive queue, the close emits an RST instead of a FIN —
  // and an arriving RST destroys the server's receive queue, silently
  // truncating the tail of the stream it had not read yet. Orderly close
  // and post-bye errors both mean the server is done with us; neither is a
  // failure of the replay (the bye itself is fire-and-forget).
  const int64_t deadline = WallMicros() + SecondsToMicros(30);
  while (WallMicros() < deadline) {
    uint8_t chunk[4096];
    const StatusOr<int64_t> n = ReadSomeNonBlocking(fd_, chunk, sizeof(chunk));
    if (!n.ok() || n.value() == 0) break;
    if (n.value() < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    rbuf_.insert(rbuf_.end(), chunk,
                 chunk + static_cast<ptrdiff_t>(n.value()));
    if (!ConsumeInbound().ok()) break;
  }
  return Status::Ok();
}

Status LoadgenConnection::Reconnect(const RetryPolicy& retry) {
  CloseFd(fd_);
  fd_ = -1;
  buf_.clear();
  rbuf_.clear();
  roff_ = 0;
  if (Status s = DialAndGreet(retry); !s.ok()) return s;
  ++stats_.reconnects;
  // Replay the retained tail the (possibly restored) server is missing.
  // Anything below resume_from_ it already has; duplicates beyond that are
  // impossible — resume_from_ is exactly its next expected seq.
  int64_t replayed = 0;
  for (const auto& [seq, e] : retained_) {
    if (seq < resume_from_) continue;
    EncodeEvent(e, seq, &buf_);
    ++replayed;
    if (buf_.size() >= kFlushThresholdBytes) {
      if (Status s = Flush(); !s.ok()) return s;
    }
  }
  stats_.replayed_frames += replayed;
  stats_.frames_sent += replayed;
  return Flush();
}

void LoadgenConnection::Close() {
  CloseFd(fd_);
  fd_ = -1;
  buf_.clear();
  rbuf_.clear();
  roff_ = 0;
}

Status ReplayFeed(EventFeed& feed,
                  const std::vector<LoadgenConnection*>& conns,
                  const ReplayOptions& options) {
  KLINK_CHECK(!conns.empty());
  std::vector<EventFeed::FeedElement> scratch;
  const int64_t unbounded = std::numeric_limits<int64_t>::max();

  // Send with crash recovery: when a send fails and a reconnect policy is
  // armed, re-dial and resume — the failed element is already retained, so
  // Reconnect's replay covers it and the replay loop just moves on.
  auto recover = [&](LoadgenConnection* c, const Status& s) -> Status {
    if (s.ok() || options.reconnect.max_retries == 0) return s;
    return c->Reconnect(options.reconnect);
  };

  const int64_t wall_start = WallMicros();
  TimeMicros horizon = options.speed > 0.0 ? 0 : options.until;
  while (true) {
    if (options.speed > 0.0) {
      horizon = std::min<TimeMicros>(
          options.until,
          static_cast<TimeMicros>(
              static_cast<double>(WallMicros() - wall_start) *
              options.speed));
    }
    scratch.clear();
    feed.PollUpTo(horizon, unbounded, &scratch);
    for (const EventFeed::FeedElement& fe : scratch) {
      KLINK_CHECK(fe.source_index >= 0 &&
                  fe.source_index < static_cast<int>(conns.size()));
      LoadgenConnection* c = conns[static_cast<size_t>(fe.source_index)];
      if (const Status s = recover(c, c->SendEvent(fe.event)); !s.ok()) {
        return s;
      }
    }
    for (LoadgenConnection* c : conns) {
      if (const Status s = recover(c, c->Flush()); !s.ok()) return s;
    }
    if (horizon >= options.until) break;
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.poll_step));
  }

  for (LoadgenConnection* c : conns) {
    if (const Status s = recover(c, c->Flush()); !s.ok()) return s;
  }
  if (options.send_bye) {
    for (LoadgenConnection* c : conns) {
      if (const Status s = c->SendBye(); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace klink
