#include "src/net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "src/common/check.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace klink {
namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // klink-lint: allow(determinism): paces real TCP replay against wall time
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LoadgenConnection::~LoadgenConnection() { Close(); }

Status LoadgenConnection::Connect(const std::string& host, uint16_t port,
                                  uint32_t stream_id) {
  KLINK_CHECK_EQ(fd_, -1);
  StatusOr<int> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  buf_.clear();
  EncodeHello(stream_id, &buf_);
  ++stats_.frames_sent;
  return Flush();
}

Status LoadgenConnection::SendEvent(const Event& e) {
  KLINK_CHECK_GE(fd_, 0);
  EncodeEvent(e, &buf_);
  ++stats_.frames_sent;
  if (e.is_data()) ++stats_.data_events_sent;
  if (buf_.size() >= kFlushThresholdBytes) return Flush();
  return Status::Ok();
}

Status LoadgenConnection::Flush() {
  if (buf_.empty()) return Status::Ok();
  const Status s = SendAll(fd_, buf_.data(), buf_.size());
  if (s.ok()) stats_.bytes_sent += static_cast<int64_t>(buf_.size());
  buf_.clear();
  return s;
}

Status LoadgenConnection::SendBye() {
  EncodeBye(&buf_);
  ++stats_.frames_sent;
  return Flush();
}

void LoadgenConnection::Close() {
  CloseFd(fd_);
  fd_ = -1;
  buf_.clear();
}

Status ReplayFeed(EventFeed& feed,
                  const std::vector<LoadgenConnection*>& conns,
                  const ReplayOptions& options) {
  KLINK_CHECK(!conns.empty());
  std::vector<EventFeed::FeedElement> scratch;
  const int64_t unbounded = std::numeric_limits<int64_t>::max();

  const int64_t wall_start = WallMicros();
  TimeMicros horizon = options.speed > 0.0 ? 0 : options.until;
  while (true) {
    if (options.speed > 0.0) {
      horizon = std::min<TimeMicros>(
          options.until,
          static_cast<TimeMicros>(
              static_cast<double>(WallMicros() - wall_start) *
              options.speed));
    }
    scratch.clear();
    feed.PollUpTo(horizon, unbounded, &scratch);
    for (const EventFeed::FeedElement& fe : scratch) {
      KLINK_CHECK(fe.source_index >= 0 &&
                  fe.source_index < static_cast<int>(conns.size()));
      const Status s =
          conns[static_cast<size_t>(fe.source_index)]->SendEvent(fe.event);
      if (!s.ok()) return s;
    }
    for (LoadgenConnection* c : conns) {
      if (const Status s = c->Flush(); !s.ok()) return s;
    }
    if (horizon >= options.until) break;
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.poll_step));
  }

  if (options.send_bye) {
    for (LoadgenConnection* c : conns) {
      if (const Status s = c->SendBye(); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

}  // namespace klink
