#include "src/net/ingest_server.h"

#include <poll.h>

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/net/socket.h"

namespace klink {
namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // klink-lint: allow(determinism): idle timeouts of real TCP connections
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

IngestServer::IngestServer(const IngestServerConfig& config,
                           IngestGateway* gateway)
    : config_(config), gateway_(gateway) {
  KLINK_CHECK(gateway_ != nullptr);
  KLINK_CHECK_GE(config_.max_connections, 1);
  KLINK_CHECK_GE(config_.idle_timeout_ms, 0);
  KLINK_CHECK_GT(config_.read_chunk_bytes, kWireHeaderLen);
  read_scratch_.resize(config_.read_chunk_bytes);
}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start() {
  KLINK_CHECK_EQ(listen_fd_, -1);
  StatusOr<int> fd = ListenTcp(config_.port, &port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = fd.value();
  return Status::Ok();
}

void IngestServer::Stop() {
  for (Connection& c : conns_) CloseFd(c.fd);
  conns_.clear();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

int64_t IngestServer::PollOnce(int timeout_ms) {
  KLINK_CHECK_GE(listen_fd_, 0);
  int64_t delivered = 0;

  // Resume connections whose streams regained credit since the last poll
  // (the engine drains staging queues between polls). Buffered bytes are
  // decoded first; the connection may immediately re-pause.
  for (size_t i = 0; i < conns_.size();) {
    Connection& c = conns_[i];
    if (c.paused && gateway_->TryResume(static_cast<uint32_t>(c.stream_id))) {
      c.paused = false;
      if (!DecodeBuffered(c, &delivered)) {
        conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
        continue;
      }
    }
    ++i;
  }

  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  std::vector<size_t> fd_conn;  // fds[i + 1] -> conns_[fd_conn[i]]
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].paused) continue;
    fds.push_back(pollfd{conns_[i].fd, POLLIN, 0});
    fd_conn.push_back(i);
  }

  const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                        timeout_ms);
  if (rc < 0) return delivered;  // EINTR: retry next iteration

  if ((fds[0].revents & POLLIN) != 0) AcceptPending();

  std::vector<size_t> to_close;
  for (size_t i = 0; i < fd_conn.size(); ++i) {
    const short ev = fds[i + 1].revents;
    if ((ev & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    Connection& c = conns_[fd_conn[i]];
    if (!ReadAndDecode(c, &delivered)) to_close.push_back(fd_conn[i]);
  }
  // Erase closed connections back-to-front so indices stay valid.
  std::sort(to_close.begin(), to_close.end());
  for (size_t i = to_close.size(); i > 0; --i) {
    conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(to_close[i - 1]));
  }

  if (config_.idle_timeout_ms > 0) {
    const int64_t now = WallMicros();
    const int64_t limit = config_.idle_timeout_ms * 1000;
    for (size_t i = conns_.size(); i > 0; --i) {
      Connection& c = conns_[i - 1];
      if (c.paused || now - c.last_activity_micros <= limit) continue;
      gateway_->metrics().AddIdleTimeout();
      FailConnection(c, WireError::kIdleTimeout, "idle timeout");
      conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i - 1));
    }
  }
  return delivered;
}

void IngestServer::AcceptPending() {
  while (true) {
    StatusOr<int> fd = AcceptNonBlocking(listen_fd_);
    if (!fd.ok() || fd.value() < 0) return;
    if (static_cast<int>(conns_.size()) >= config_.max_connections) {
      send_scratch_.clear();
      EncodeError(WireError::kProtocolViolation, "too many connections",
                  &send_scratch_);
      // Best effort: the connection is rejected either way.
      (void)SendAll(fd.value(), send_scratch_.data(), send_scratch_.size());
      CloseFd(fd.value());
      continue;
    }
    Connection c;
    c.fd = fd.value();
    c.last_activity_micros = WallMicros();
    conns_.push_back(std::move(c));
    gateway_->metrics().AddConnection();
  }
}

bool IngestServer::ReadAndDecode(Connection& c, int64_t* delivered) {
  const StatusOr<int64_t> n =
      ReadSome(c.fd, read_scratch_.data(), read_scratch_.size());
  if (!n.ok()) {
    CloseConnection(c);
    return false;
  }
  if (n.value() < 0) return true;  // spurious wakeup, nothing to read
  if (n.value() == 0) {
    // Orderly shutdown without kBye: flush what we have and end the
    // stream's arrivals. The engine keeps running on whatever arrived.
    CloseConnection(c);
    return false;
  }
  c.last_activity_micros = WallMicros();
  gateway_->metrics().AddBytesRead(n.value());
  c.buf.insert(c.buf.end(), read_scratch_.begin(),
               read_scratch_.begin() + static_cast<ptrdiff_t>(n.value()));
  return DecodeBuffered(c, delivered);
}

bool IngestServer::DecodeBuffered(Connection& c, int64_t* delivered) {
  bool open = true;
  while (open && !c.paused) {
    Frame frame;
    size_t consumed = 0;
    const DecodeResult r = DecodeFrame(c.buf.data() + c.off,
                                       c.buf.size() - c.off, &frame,
                                       &consumed);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kVersionMismatch) {
      // Version skew (e.g. a v1 client against this v2 server) draws a
      // typed error, not a generic malformed-frame close: the client can
      // tell "upgrade me" apart from "I sent garbage".
      gateway_->metrics().AddMalformedFrame();
      FailConnection(c, WireError::kVersionMismatch,
                     "unsupported protocol version");
      open = false;
      break;
    }
    if (r == DecodeResult::kMalformed) {
      gateway_->metrics().AddMalformedFrame();
      FailConnection(c, WireError::kMalformedFrame, "malformed frame");
      open = false;
      break;
    }
    if (IsElementFrame(frame.type)) {
      if (c.stream_id < 0) {
        FailConnection(c, WireError::kProtocolViolation,
                       "element frame before hello");
        open = false;
        break;
      }
      const uint32_t stream = static_cast<uint32_t>(c.stream_id);
      if (!gateway_->HasCredit(stream)) {
        // Out of credit: leave the frame in the buffer and stop reading
        // this socket until the engine drains the staging queue.
        gateway_->Flush(stream);
        gateway_->NoteStall(stream);
        c.paused = true;
        break;
      }
      switch (gateway_->AcceptSeq(stream, frame.seq)) {
        case IngestGateway::SeqDecision::kAccept:
          gateway_->Deliver(stream, frame.event);
          gateway_->metrics().AddFrame(stream,
                                       static_cast<int64_t>(consumed),
                                       frame.event.is_data());
          ++*delivered;
          break;
        case IngestGateway::SeqDecision::kDuplicate:
          // Replay overlap after a client reconnect: already staged (and
          // possibly already checkpointed) — drop for exactly-once.
          break;
        case IngestGateway::SeqDecision::kGap:
          FailConnection(c, WireError::kProtocolViolation, "sequence gap");
          open = false;
          break;
      }
      if (!open) break;
    } else {
      gateway_->metrics().AddControlFrame();
      switch (frame.type) {
        case FrameType::kHello:
          if (c.stream_id >= 0) {
            FailConnection(c, WireError::kProtocolViolation,
                           "duplicate hello");
            open = false;
          } else if (!gateway_->HasStream(frame.stream_id) &&
                     !(config_.on_unknown_stream != nullptr &&
                       config_.on_unknown_stream(frame.stream_id) &&
                       gateway_->HasStream(frame.stream_id))) {
            // Either no dynamic-attach hook, or it declined, or it claimed
            // success without registering the stream (a broken hook).
            FailConnection(c, WireError::kUnknownStream,
                           "unknown stream id");
            open = false;
          } else {
            c.stream_id = frame.stream_id;
            // HELLO_ACK tells the client where to (re)start: the next
            // acceptable sequence number. On a fresh stream that is 1; on
            // a reconnect (or after a checkpoint restore rewound the
            // cursor) the client skips or replays accordingly.
            send_scratch_.clear();
            EncodeHelloAck(frame.stream_id,
                           gateway_->last_seq_received(frame.stream_id) + 1,
                           &send_scratch_);
            if (!SendAll(c.fd, send_scratch_.data(), send_scratch_.size())
                     .ok()) {
              CloseConnection(c);
              open = false;
            }
          }
          break;
        case FrameType::kBye:
          if (c.stream_id >= 0) {
            const uint32_t stream = static_cast<uint32_t>(c.stream_id);
            gateway_->Flush(stream);
            gateway_->MarkEndOfStream(stream);
            if (config_.on_stream_end != nullptr) {
              config_.on_stream_end(stream);
            }
          }
          c.stream_id = -1;  // end-of-stream already recorded
          CloseConnection(c);
          open = false;
          break;
        case FrameType::kError:
          // Clients may report errors before disconnecting; just close.
          CloseConnection(c);
          open = false;
          break;
        default:
          break;
      }
    }
    if (!open) break;
    c.off += consumed;
  }
  if (open && c.stream_id >= 0) {
    gateway_->Flush(static_cast<uint32_t>(c.stream_id));
  }
  if (open) CompactBuffer(c);
  return open;
}

void IngestServer::SendCheckpointAck(uint32_t stream_id, uint64_t epoch,
                                     uint64_t durable_seq) {
  for (Connection& c : conns_) {
    if (c.fd < 0 || c.stream_id != static_cast<int64_t>(stream_id)) continue;
    send_scratch_.clear();
    EncodeCheckpointAck(epoch, durable_seq, &send_scratch_);
    // Best effort: a failed send just leaves the client's replay buffer
    // larger than necessary; the next ack (or HELLO_ACK) trims it.
    (void)SendAll(c.fd, send_scratch_.data(), send_scratch_.size());
    return;
  }
}

void IngestServer::FailConnection(Connection& c, WireError code,
                                  const std::string& msg) {
  send_scratch_.clear();
  EncodeError(code, msg, &send_scratch_);
  // Best effort: the peer may already be gone or the socket full.
  (void)SendAll(c.fd, send_scratch_.data(), send_scratch_.size());
  CloseConnection(c);
}

void IngestServer::CloseConnection(Connection& c) {
  if (c.stream_id >= 0) {
    gateway_->Flush(static_cast<uint32_t>(c.stream_id));
  }
  CloseFd(c.fd);
  c.fd = -1;
  gateway_->metrics().AddDisconnect();
}

void IngestServer::CompactBuffer(Connection& c) {
  if (c.off == 0) return;
  if (c.off == c.buf.size()) {
    c.buf.clear();
  } else {
    c.buf.erase(c.buf.begin(), c.buf.begin() + static_cast<ptrdiff_t>(c.off));
  }
  c.off = 0;
}

}  // namespace klink
