#ifndef KLINK_NET_DELAY_MODEL_H_
#define KLINK_NET_DELAY_MODEL_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/zipf.h"

namespace klink {

/// Samples the network delay an event experiences between generation at the
/// source and ingestion at the SPE. The paper evaluates Uniform and
/// Zipf(0.99) delays (Sec. 6); Constant and Exponential are provided for
/// tests and examples.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Draws one delay (>= 0).
  virtual DurationMicros Sample(Rng& rng) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Always `delay`.
class ConstantDelay final : public DelayModel {
 public:
  explicit ConstantDelay(DurationMicros delay);
  DurationMicros Sample(Rng& rng) override;
  std::string name() const override { return "constant"; }

 private:
  DurationMicros delay_;
};

/// Uniform in [lo, hi].
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(DurationMicros lo, DurationMicros hi);
  DurationMicros Sample(Rng& rng) override;
  std::string name() const override { return "uniform"; }

 private:
  DurationMicros lo_;
  DurationMicros hi_;
};

/// Zipf-distributed delay: rank r in [1, n] drawn with exponent s, mapped
/// to delay = lo + (r - 1) * step. With s = 0.99 most events see small
/// delays while a heavy tail experiences large ones, the variability regime
/// the paper stresses (Sec. 6.2.5).
class ZipfDelay final : public DelayModel {
 public:
  /// Delays take values {lo, lo+step, ..., lo+(n-1)*step}.
  ZipfDelay(DurationMicros lo, DurationMicros step, int64_t n, double s = 0.99);
  DurationMicros Sample(Rng& rng) override;
  std::string name() const override { return "zipf"; }

 private:
  DurationMicros lo_;
  DurationMicros step_;
  ZipfSampler sampler_;
};

/// Heavy-tailed Pareto (Lomax) delay: lo + scale * (U^(-1/alpha) - 1).
/// Unlike ZipfDelay's bounded rank ladder, the tail is unbounded: with
/// alpha <= 2 the variance diverges and with alpha <= 1 even the mean
/// does — the straggler regime where an allowed-lateness horizon matters
/// (events arrive arbitrarily far behind the watermark). Samples are
/// capped at `cap` to keep virtual-time experiments finite.
class ParetoDelay final : public DelayModel {
 public:
  /// Requires alpha > 0, scale > 0, cap >= lo.
  ParetoDelay(DurationMicros lo, double alpha, DurationMicros scale,
              DurationMicros cap = SecondsToMicros(30));
  DurationMicros Sample(Rng& rng) override;
  std::string name() const override { return "pareto"; }

  double alpha() const { return alpha_; }
  DurationMicros scale() const { return scale_; }

 private:
  DurationMicros lo_;
  double alpha_;
  DurationMicros scale_;
  DurationMicros cap_;
};

/// Exponential with the given mean, shifted by `lo`.
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(DurationMicros lo, DurationMicros mean);
  DurationMicros Sample(Rng& rng) override;
  std::string name() const override { return "exponential"; }

 private:
  DurationMicros lo_;
  DurationMicros mean_;
};

/// The paper's two evaluation distributions with default magnitudes
/// (tens-of-milliseconds scale, matching commodity-cluster delays).
std::unique_ptr<DelayModel> MakePaperUniformDelay();
std::unique_ptr<DelayModel> MakePaperZipfDelay();
/// Default heavy-tailed straggler distribution for the lateness
/// experiments: Pareto(alpha = 1.5) with a 20 ms scale atop a 5 ms floor.
std::unique_ptr<DelayModel> MakeDefaultParetoDelay();

}  // namespace klink

#endif  // KLINK_NET_DELAY_MODEL_H_
