#ifndef KLINK_NET_INGEST_GATEWAY_H_
#define KLINK_NET_INGEST_GATEWAY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/types.h"
#include "src/event/event.h"
#include "src/event/stream_queue.h"
#include "src/runtime/event_feed.h"
#include "src/runtime/metrics.h"

namespace klink {

/// Streams per query in the default stream-id numbering: connection stream
/// id = query_index * kStreamsPerQuery + source_index. A convention shared
/// by klink_run --listen and the loadgen tool, not a protocol constant —
/// any registration scheme works at the gateway level.
inline constexpr uint32_t kStreamsPerQuery = 8;

inline constexpr uint32_t MakeStreamId(int query_index, int source_index) {
  return static_cast<uint32_t>(query_index) * kStreamsPerQuery +
         static_cast<uint32_t>(source_index);
}

/// Buffering policy of one registered ingest stream.
struct IngestStreamConfig {
  /// Credit budget: once the staging queue holds this many (simulated)
  /// bytes, the connection feeding the stream stops being read.
  int64_t byte_budget = 4ll << 20;
  /// Reading resumes once the staging queue drains below
  /// byte_budget * resume_fraction (hysteresis, like the engine's
  /// memory-tracker backpressure).
  double resume_fraction = 0.5;
};

/// Bridges decoded wire frames into the engine: one staging StreamQueue
/// ring buffer per registered stream, filled by the IngestServer's decode
/// path via PushBatch and drained by a NetworkFeed on the engine side.
///
/// Credit-based backpressure (DESIGN.md "Network ingest"): the server asks
/// HasCredit() before decoding each element frame; when the staging queue
/// is over budget the connection is paused — its socket is no longer
/// polled for reads, so TCP flow control pushes back to the client — and
/// resumes via TryResume() once the engine drains the queue below the
/// resume threshold. A slow query therefore bounds its ingest memory at
/// byte_budget instead of OOMing the engine.
///
/// Single-threaded by design: the server poll loop and the engine cycle
/// loop run on the same thread (sockets, not threads, provide asynchrony).
class IngestGateway {
 public:
  IngestGateway();

  IngestGateway(const IngestGateway&) = delete;
  IngestGateway& operator=(const IngestGateway&) = delete;

  /// Registers a stream before serving. Stream ids are dense small
  /// integers by convention (MakeStreamId) but any uint32 works.
  void RegisterStream(uint32_t stream_id, const IngestStreamConfig& config);
  bool HasStream(uint32_t stream_id) const;

  /// Verdict on an element frame's per-stream sequence number.
  enum class SeqDecision {
    kAccept,     ///< next expected: stage it
    kDuplicate,  ///< already received (client replay overlap): drop silently
    kGap,        ///< skipped ahead: protocol violation, fail the connection
  };

  /// ---- decode path (called by IngestServer) --------------------------
  /// True while the stream's staged + scratch bytes are under budget.
  bool HasCredit(uint32_t stream_id) const;
  /// Admits or rejects an element frame by its sequence number. Seqs are
  /// client-assigned, contiguous from 1 per stream; after a reconnect the
  /// client replays its unacked tail, so overlaps are expected (dropped as
  /// duplicates) while gaps can only mean a broken client.
  SeqDecision AcceptSeq(uint32_t stream_id, uint64_t seq);
  /// Stages one decoded element (into the scratch run; Flush commits).
  void Deliver(uint32_t stream_id, const Event& e);
  /// Commits the scratch run into the staging ring buffer with one
  /// PushBatch, and advances the stream's arrival watermark.
  void Flush(uint32_t stream_id);
  /// Records that the stream's connection was paused for lack of credit.
  void NoteStall(uint32_t stream_id);
  /// True (ending the stall-time interval) once the staging queue has
  /// drained below the resume threshold, so the server may read again.
  bool TryResume(uint32_t stream_id);
  /// Graceful end-of-stream (kBye received or connection closed cleanly).
  void MarkEndOfStream(uint32_t stream_id);

  /// ---- drain path (called by NetworkFeed on the engine thread) -------
  /// Ingest time of the oldest staged element, or kNoTime when empty.
  TimeMicros PeekIngestTime(uint32_t stream_id) const;
  const Event& Front(uint32_t stream_id) const;
  Event Pop(uint32_t stream_id);

  int64_t staged_bytes(uint32_t stream_id) const;
  int64_t staged_events(uint32_t stream_id) const;
  /// Largest staged_bytes ever observed (backpressure bound checks).
  int64_t peak_staged_bytes(uint32_t stream_id) const;
  bool end_of_stream(uint32_t stream_id) const;
  /// Data events decoded for the stream so far.
  int64_t data_events(uint32_t stream_id) const;

  /// ---- exactly-once bookkeeping --------------------------------------
  /// Highest sequence number accepted from the stream's connection.
  uint64_t last_seq_received(uint32_t stream_id) const;
  /// Sequence number of the last element handed to the engine via Pop().
  /// Sampled by the checkpoint coordinator at barrier injection: it is the
  /// stream's replay cursor (everything <= it is pre-barrier).
  uint64_t delivered_seq(uint32_t stream_id) const;
  /// Replayed frames dropped by dedup so far.
  int64_t duplicate_events(uint32_t stream_id) const;
  /// Recovery: rewinds the stream's cursors to a restored checkpoint's
  /// cursor. The next acceptable frame is seq + 1; the reconnecting client
  /// learns this via HELLO_ACK and replays from there.
  void RestoreCursor(uint32_t stream_id, uint64_t seq);

  /// Arrival progress: every element with ingest_time <= StagedThrough()
  /// has been staged (clients send in ingestion order, so the last staged
  /// ingest_time is a watermark over the TCP stream). INT64_MAX once the
  /// stream ended. Deterministic replays (tests, loadgen --lockstep) use
  /// this to advance virtual time only through fully-arrived prefixes.
  TimeMicros StagedThrough(uint32_t stream_id) const;

  IngestMetrics& metrics() { return metrics_; }
  const IngestMetrics& metrics() const { return metrics_; }

 private:
  struct Stream {
    IngestStreamConfig config;
    StreamQueue staged;
    std::vector<Event> scratch;  // decoded, not yet committed
    int64_t scratch_bytes = 0;
    TimeMicros staged_through = 0;
    bool stalled = false;
    int64_t stall_start_micros = 0;  // wall clock
    bool ended = false;
    uint64_t last_seq_received = 0;  // highest accepted (0 = none yet)
    uint64_t delivered_seq = 0;      // last seq popped by the engine
    int64_t duplicates = 0;          // replayed frames dropped by dedup
  };

  Stream& GetStream(uint32_t stream_id);
  const Stream& GetStream(uint32_t stream_id) const;

  /// KLINK_AUDIT=1: cross-checks one stream's staging accounting (ring
  /// buffer bytes vs full recompute, scratch-run bytes, credit/stall
  /// consistency, arrival-watermark monotonicity) at commit and drain
  /// boundaries. No-op when auditing is off.
  void AuditStream(const Stream& s) const;

  std::map<uint32_t, Stream> streams_;
  IngestMetrics metrics_;
  /// Sampled from KLINK_AUDIT once at construction (see runtime/audit.h).
  const bool audit_;
};

/// EventFeed over gateway streams: the engine ingests network arrivals
/// through the exact interface the synthetic in-process feeds use, so
/// scheduling, backpressure, and memory accounting are oblivious to where
/// events come from. Elements are delivered in ingestion order (merged
/// across the feed's streams), gated on ingest_time <= now — an element
/// that arrived early waits; one that arrives late (real network delay)
/// is picked up by the next cycle, which is precisely the asynchrony
/// Klink's slack computation runs against.
class NetworkFeed final : public EventFeed {
 public:
  /// `stream_ids[i]` feeds the query's source operator i.
  NetworkFeed(IngestGateway* gateway, std::vector<uint32_t> stream_ids);

  void PollUpTo(TimeMicros now, int64_t max_bytes,
                std::vector<FeedElement>* out) override;
  int64_t generated_events() const override;

  /// Min arrival progress across this feed's streams (see
  /// IngestGateway::StagedThrough).
  TimeMicros SafeThrough() const;

 private:
  IngestGateway* gateway_;
  std::vector<uint32_t> streams_;
};

}  // namespace klink

#endif  // KLINK_NET_INGEST_GATEWAY_H_
