#ifndef KLINK_NET_SOCKET_H_
#define KLINK_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace klink {

/// Thin POSIX TCP helpers shared by the ingest server and the loadgen
/// client. All functions report recoverable failures via Status; none
/// throw or abort.

/// Creates a non-blocking listening socket bound to 127.0.0.1:`port`
/// (port 0 picks an ephemeral port). On success returns the fd and stores
/// the bound port in `*bound_port`.
StatusOr<int> ListenTcp(uint16_t port, uint16_t* bound_port);

/// Blocking client connect to host:port. Returns the connected fd.
/// The socket stays blocking so a stalled server exerts TCP flow-control
/// backpressure on the caller (loadgen blocks in send()).
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port);

/// Accepts one pending connection from a listening fd, non-blocking.
/// Returns the connection fd, -1 when no connection is pending.
StatusOr<int> AcceptNonBlocking(int listen_fd);

Status SetNonBlocking(int fd);

/// Disables Nagle so small frames flush promptly.
void SetNoDelay(int fd);

/// Blocking send of the whole buffer (loops over partial writes / EINTR).
Status SendAll(int fd, const uint8_t* data, size_t len);

/// Non-blocking read into `buf`. Returns bytes read (> 0), 0 on orderly
/// peer shutdown, -1 when no data is available (EAGAIN); other errors via
/// Status.
StatusOr<int64_t> ReadSome(int fd, uint8_t* buf, size_t len);

/// Like ReadSome but never blocks even on a blocking fd (MSG_DONTWAIT).
/// Used by the loadgen client — whose socket stays blocking for send-side
/// backpressure — to drain server acks opportunistically.
StatusOr<int64_t> ReadSomeNonBlocking(int fd, uint8_t* buf, size_t len);

void CloseFd(int fd);

}  // namespace klink

#endif  // KLINK_NET_SOCKET_H_
