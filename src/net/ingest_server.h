#ifndef KLINK_NET_INGEST_SERVER_H_
#define KLINK_NET_INGEST_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/ingest_gateway.h"
#include "src/net/wire.h"

namespace klink {

struct IngestServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  int max_connections = 256;
  /// Connections with no traffic for this long are closed with an
  /// kIdleTimeout error frame; 0 disables. Paused (backpressured)
  /// connections are exempt — they are stalled on purpose.
  int64_t idle_timeout_ms = 0;
  /// Max bytes read from one connection per poll iteration (fairness, and
  /// a bound on per-connection buffering).
  size_t read_chunk_bytes = 64 * 1024;
  /// Dynamic tenant attach: when set, a kHello naming a stream the gateway
  /// does not know is offered to this hook instead of drawing
  /// kUnknownStream. The hook attaches the tenant (registers the stream
  /// with the gateway, deploys the query) and returns true to accept the
  /// hello; returning false — stream id outside the tenant id space, say —
  /// keeps the unknown-stream rejection. Unset (the default) preserves the
  /// closed-world behavior: unknown streams are a client error.
  std::function<bool(uint32_t stream_id)> on_unknown_stream;
  /// Graceful-detach hook: invoked after a kBye marked `stream_id`'s
  /// end-of-stream. The owner uses it to drain-detach a tenant once all of
  /// its streams said goodbye. Abrupt disconnects (no kBye) deliberately
  /// do not fire it — the client may reconnect and resume.
  std::function<void(uint32_t stream_id)> on_stream_end;
};

/// Non-blocking, poll()-based TCP ingest front end. Accepts many client
/// connections; the first frame on each must be kHello binding it to a
/// registered gateway stream, after which element frames are decoded and
/// staged through the IngestGateway.
///
/// Single-threaded: the owner calls PollOnce() from the engine loop; all
/// asynchrony lives in the kernel's socket buffers. Robustness: a
/// malformed or protocol-violating frame draws an error frame and a
/// connection close (never UB — the decoder is strictly bounds-checked);
/// a mid-stream disconnect just ends that stream's arrivals; out-of-credit
/// streams pause at frame granularity and resume after the engine drains
/// them (see IngestGateway).
class IngestServer {
 public:
  IngestServer(const IngestServerConfig& config, IngestGateway* gateway);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds and listens. Must be called before PollOnce.
  Status Start();

  /// Closes the listener and every connection.
  void Stop();

  /// The bound port (useful with config.port = 0).
  uint16_t port() const { return port_; }

  /// One poll iteration: waits up to `timeout_ms` for socket activity,
  /// accepts pending connections, reads and decodes frames, and resumes
  /// paused connections whose streams regained credit. Returns the number
  /// of element frames delivered to the gateway.
  int64_t PollOnce(int timeout_ms);

  int num_connections() const { return static_cast<int>(conns_.size()); }

  /// Sends a CHECKPOINT_ACK to the connection bound to `stream_id`, telling
  /// the client every element with seq <= durable_seq is covered by durable
  /// checkpoint `epoch` and may be dropped from its replay buffer. No-op
  /// when the stream has no live connection (the client learns the durable
  /// prefix from HELLO_ACK when it reconnects). Wired to the checkpoint
  /// coordinator's ack callback; both run on the engine thread.
  void SendCheckpointAck(uint32_t stream_id, uint64_t epoch,
                         uint64_t durable_seq);

 private:
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> buf;  // undecoded bytes (after compaction)
    size_t off = 0;            // consumed prefix of buf
    int64_t stream_id = -1;    // -1 until kHello binds one
    bool paused = false;       // out of gateway credit
    int64_t last_activity_micros = 0;
  };

  void AcceptPending();
  /// Reads one chunk and decodes. Returns false when the connection was
  /// closed (gracefully or not).
  bool ReadAndDecode(Connection& c, int64_t* delivered);
  /// Decodes buffered frames until exhausted, out of credit, or error.
  /// Returns false when the connection was closed.
  bool DecodeBuffered(Connection& c, int64_t* delivered);
  /// Sends a best-effort error frame and closes the connection.
  void FailConnection(Connection& c, WireError code, const std::string& msg);
  void CloseConnection(Connection& c);
  void CompactBuffer(Connection& c);

  IngestServerConfig config_;
  IngestGateway* gateway_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<Connection> conns_;
  std::vector<uint8_t> read_scratch_;
  std::vector<uint8_t> send_scratch_;
};

}  // namespace klink

#endif  // KLINK_NET_INGEST_SERVER_H_
