#include "src/net/ingest_gateway.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/audit.h"

namespace klink {
namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             // klink-lint: allow(determinism): stall-time metrics of real TCP connections
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t StagedCost(const Event& e) {
  return e.payload_bytes + StreamQueue::kPerEventOverhead;
}

}  // namespace

IngestGateway::IngestGateway() : audit_(AuditEnabledFromEnv()) {}

void IngestGateway::AuditStream(const Stream& s) const {
  if (!audit_) return;
  // Staging ring buffer: incremental byte/data counters vs a full walk.
  KLINK_CHECK_EQ(s.staged.bytes(), s.staged.AuditRecomputeBytes());
  KLINK_CHECK_EQ(s.staged.data_count(), s.staged.AuditRecomputeDataCount());
  // Scratch run: the pending-commit byte total matches its elements.
  int64_t scratch = 0;
  for (const Event& e : s.scratch) scratch += StagedCost(e);
  KLINK_CHECK_EQ(s.scratch_bytes, scratch);
  // A stalled connection is only declared while over the resume threshold
  // or still undrained; staged volume never exceeds budget by more than
  // the final committed run (credit is checked pre-decode, per frame).
  KLINK_CHECK_GE(s.staged.bytes(), 0);
}

void IngestGateway::RegisterStream(uint32_t stream_id,
                                   const IngestStreamConfig& config) {
  KLINK_CHECK_GT(config.byte_budget, 0);
  KLINK_CHECK_GT(config.resume_fraction, 0.0);
  KLINK_CHECK_LE(config.resume_fraction, 1.0);
  KLINK_CHECK(streams_.find(stream_id) == streams_.end());
  streams_[stream_id].config = config;
}

bool IngestGateway::HasStream(uint32_t stream_id) const {
  return streams_.find(stream_id) != streams_.end();
}

IngestGateway::Stream& IngestGateway::GetStream(uint32_t stream_id) {
  auto it = streams_.find(stream_id);
  KLINK_CHECK(it != streams_.end());
  return it->second;
}

const IngestGateway::Stream& IngestGateway::GetStream(
    uint32_t stream_id) const {
  auto it = streams_.find(stream_id);
  KLINK_CHECK(it != streams_.end());
  return it->second;
}

bool IngestGateway::HasCredit(uint32_t stream_id) const {
  const Stream& s = GetStream(stream_id);
  return s.staged.bytes() + s.scratch_bytes < s.config.byte_budget;
}

IngestGateway::SeqDecision IngestGateway::AcceptSeq(uint32_t stream_id,
                                                    uint64_t seq) {
  Stream& s = GetStream(stream_id);
  if (seq == s.last_seq_received + 1) {
    s.last_seq_received = seq;
    return SeqDecision::kAccept;
  }
  if (seq <= s.last_seq_received) {
    ++s.duplicates;
    return SeqDecision::kDuplicate;
  }
  return SeqDecision::kGap;
}

void IngestGateway::Deliver(uint32_t stream_id, const Event& e) {
  Stream& s = GetStream(stream_id);
  s.scratch.push_back(e);
  s.scratch_bytes += StagedCost(e);
}

void IngestGateway::Flush(uint32_t stream_id) {
  Stream& s = GetStream(stream_id);
  if (s.scratch.empty()) return;
  s.staged.PushBatch(s.scratch.data(),
                     static_cast<int64_t>(s.scratch.size()));
  // Clients send in ingestion order, so the last committed element's
  // ingest_time is the stream's arrival watermark.
  s.staged_through =
      std::max(s.staged_through, s.scratch.back().ingest_time);
  s.scratch.clear();
  s.scratch_bytes = 0;
  IngestStreamMetrics& m = metrics_.stream(stream_id);
  m.peak_staged_bytes = std::max(m.peak_staged_bytes, s.staged.bytes());
  AuditStream(s);
}

void IngestGateway::NoteStall(uint32_t stream_id) {
  Stream& s = GetStream(stream_id);
  if (s.stalled) return;
  s.stalled = true;
  s.stall_start_micros = WallMicros();
  ++metrics_.stream(stream_id).backpressure_stalls;
}

bool IngestGateway::TryResume(uint32_t stream_id) {
  Stream& s = GetStream(stream_id);
  if (!s.stalled) return true;
  const int64_t resume_below = static_cast<int64_t>(
      static_cast<double>(s.config.byte_budget) * s.config.resume_fraction);
  if (s.staged.bytes() + s.scratch_bytes >= resume_below) return false;
  s.stalled = false;
  metrics_.stream(stream_id).stall_micros +=
      WallMicros() - s.stall_start_micros;
  return true;
}

void IngestGateway::MarkEndOfStream(uint32_t stream_id) {
  GetStream(stream_id).ended = true;
}

TimeMicros IngestGateway::PeekIngestTime(uint32_t stream_id) const {
  const Stream& s = GetStream(stream_id);
  return s.staged.empty() ? kNoTime : s.staged.Front().ingest_time;
}

const Event& IngestGateway::Front(uint32_t stream_id) const {
  return GetStream(stream_id).staged.Front();
}

Event IngestGateway::Pop(uint32_t stream_id) {
  Stream& s = GetStream(stream_id);
  Event e = s.staged.Pop();
  // Seqs are contiguous and every accepted element passes through the
  // staging queue exactly once, so the delivered cursor is a simple count.
  ++s.delivered_seq;
  AuditStream(s);
  return e;
}

uint64_t IngestGateway::last_seq_received(uint32_t stream_id) const {
  return GetStream(stream_id).last_seq_received;
}

uint64_t IngestGateway::delivered_seq(uint32_t stream_id) const {
  return GetStream(stream_id).delivered_seq;
}

int64_t IngestGateway::duplicate_events(uint32_t stream_id) const {
  return GetStream(stream_id).duplicates;
}

void IngestGateway::RestoreCursor(uint32_t stream_id, uint64_t seq) {
  Stream& s = GetStream(stream_id);
  KLINK_CHECK(s.staged.empty());  // rewind before serving, not mid-stream
  KLINK_CHECK(s.scratch.empty());
  s.last_seq_received = seq;
  s.delivered_seq = seq;
}

int64_t IngestGateway::staged_bytes(uint32_t stream_id) const {
  return GetStream(stream_id).staged.bytes();
}

int64_t IngestGateway::staged_events(uint32_t stream_id) const {
  return GetStream(stream_id).staged.size();
}

int64_t IngestGateway::peak_staged_bytes(uint32_t stream_id) const {
  auto it = metrics_.streams().find(stream_id);
  return it == metrics_.streams().end() ? 0 : it->second.peak_staged_bytes;
}

bool IngestGateway::end_of_stream(uint32_t stream_id) const {
  return GetStream(stream_id).ended;
}

int64_t IngestGateway::data_events(uint32_t stream_id) const {
  auto it = metrics_.streams().find(stream_id);
  return it == metrics_.streams().end() ? 0 : it->second.data_events;
}

TimeMicros IngestGateway::StagedThrough(uint32_t stream_id) const {
  const Stream& s = GetStream(stream_id);
  if (s.ended) return std::numeric_limits<TimeMicros>::max();
  return s.staged_through;
}

NetworkFeed::NetworkFeed(IngestGateway* gateway,
                         std::vector<uint32_t> stream_ids)
    : gateway_(gateway), streams_(std::move(stream_ids)) {
  KLINK_CHECK(gateway_ != nullptr);
  KLINK_CHECK(!streams_.empty());
  for (uint32_t id : streams_) KLINK_CHECK(gateway_->HasStream(id));
}

void NetworkFeed::PollUpTo(TimeMicros now, int64_t max_bytes,
                           std::vector<FeedElement>* out) {
  // Merge the feed's streams in ingestion order, delivering elements due
  // by `now` under the same byte-budget rule as SyntheticFeed::PollUpTo
  // (always at least one element, stop before exceeding the budget).
  int64_t delivered = 0;
  while (true) {
    int best = -1;
    TimeMicros best_time = 0;
    for (size_t i = 0; i < streams_.size(); ++i) {
      const TimeMicros t = gateway_->PeekIngestTime(streams_[i]);
      if (t == kNoTime || t > now) continue;
      if (best < 0 || t < best_time) {
        best = static_cast<int>(i);
        best_time = t;
      }
    }
    if (best < 0) break;
    const uint32_t stream = streams_[static_cast<size_t>(best)];
    const int64_t sz = gateway_->Front(stream).payload_bytes +
                       StreamQueue::kPerEventOverhead;
    if (delivered > 0 && delivered + sz > max_bytes) break;
    delivered += sz;
    out->push_back(FeedElement{best, gateway_->Pop(stream)});
  }
}

int64_t NetworkFeed::generated_events() const {
  int64_t n = 0;
  for (uint32_t id : streams_) n += gateway_->data_events(id);
  return n;
}

TimeMicros NetworkFeed::SafeThrough() const {
  TimeMicros safe = std::numeric_limits<TimeMicros>::max();
  for (uint32_t id : streams_) {
    safe = std::min(safe, gateway_->StagedThrough(id));
  }
  return safe;
}

}  // namespace klink
