#include "src/net/delay_model.h"

#include "src/common/check.h"

namespace klink {

ConstantDelay::ConstantDelay(DurationMicros delay) : delay_(delay) {
  KLINK_CHECK_GE(delay, 0);
}

DurationMicros ConstantDelay::Sample(Rng& /*rng*/) { return delay_; }

UniformDelay::UniformDelay(DurationMicros lo, DurationMicros hi)
    : lo_(lo), hi_(hi) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK_LE(lo, hi);
}

DurationMicros UniformDelay::Sample(Rng& rng) { return rng.NextInt(lo_, hi_); }

ZipfDelay::ZipfDelay(DurationMicros lo, DurationMicros step, int64_t n,
                     double s)
    : lo_(lo), step_(step), sampler_(n, s) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK_GE(step, 0);
}

DurationMicros ZipfDelay::Sample(Rng& rng) {
  return lo_ + (sampler_.Sample(rng) - 1) * step_;
}

ExponentialDelay::ExponentialDelay(DurationMicros lo, DurationMicros mean)
    : lo_(lo), mean_(mean) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK_GT(mean, 0);
}

DurationMicros ExponentialDelay::Sample(Rng& rng) {
  return lo_ + static_cast<DurationMicros>(
                   rng.NextExponential(static_cast<double>(mean_)));
}

std::unique_ptr<DelayModel> MakePaperUniformDelay() {
  // Uniform 5..100 ms: moderate, bounded variability.
  return std::make_unique<UniformDelay>(MillisToMicros(5),
                                        MillisToMicros(100));
}

std::unique_ptr<DelayModel> MakePaperZipfDelay() {
  // Zipf(0.99) over 200 ranks of 2 ms steps starting at 5 ms: most events
  // arrive promptly, a heavy tail is delayed by up to ~400 ms.
  return std::make_unique<ZipfDelay>(MillisToMicros(5), MillisToMicros(2),
                                     /*n=*/200, /*s=*/0.99);
}

}  // namespace klink
