#include "src/net/delay_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace klink {

ConstantDelay::ConstantDelay(DurationMicros delay) : delay_(delay) {
  KLINK_CHECK_GE(delay, 0);
}

DurationMicros ConstantDelay::Sample(Rng& /*rng*/) { return delay_; }

UniformDelay::UniformDelay(DurationMicros lo, DurationMicros hi)
    : lo_(lo), hi_(hi) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK_LE(lo, hi);
}

DurationMicros UniformDelay::Sample(Rng& rng) { return rng.NextInt(lo_, hi_); }

ZipfDelay::ZipfDelay(DurationMicros lo, DurationMicros step, int64_t n,
                     double s)
    : lo_(lo), step_(step), sampler_(n, s) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK_GE(step, 0);
}

DurationMicros ZipfDelay::Sample(Rng& rng) {
  return lo_ + (sampler_.Sample(rng) - 1) * step_;
}

ParetoDelay::ParetoDelay(DurationMicros lo, double alpha, DurationMicros scale,
                         DurationMicros cap)
    : lo_(lo), alpha_(alpha), scale_(scale), cap_(cap) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK(alpha > 0.0);
  KLINK_CHECK_GT(scale, 0);
  KLINK_CHECK_GE(cap, lo);
}

DurationMicros ParetoDelay::Sample(Rng& rng) {
  // Inverse-CDF of the Lomax distribution; NextDouble() is in [0, 1), so
  // u = 1 - NextDouble() is in (0, 1] and the pow is finite.
  const double u = 1.0 - rng.NextDouble();
  const double tail =
      static_cast<double>(scale_) * (std::pow(u, -1.0 / alpha_) - 1.0);
  const double capped =
      std::min(static_cast<double>(cap_ - lo_), tail);
  return lo_ + static_cast<DurationMicros>(capped);
}

ExponentialDelay::ExponentialDelay(DurationMicros lo, DurationMicros mean)
    : lo_(lo), mean_(mean) {
  KLINK_CHECK_GE(lo, 0);
  KLINK_CHECK_GT(mean, 0);
}

DurationMicros ExponentialDelay::Sample(Rng& rng) {
  return lo_ + static_cast<DurationMicros>(
                   rng.NextExponential(static_cast<double>(mean_)));
}

std::unique_ptr<DelayModel> MakePaperUniformDelay() {
  // Uniform 5..100 ms: moderate, bounded variability.
  return std::make_unique<UniformDelay>(MillisToMicros(5),
                                        MillisToMicros(100));
}

std::unique_ptr<DelayModel> MakePaperZipfDelay() {
  // Zipf(0.99) over 200 ranks of 2 ms steps starting at 5 ms: most events
  // arrive promptly, a heavy tail is delayed by up to ~400 ms.
  return std::make_unique<ZipfDelay>(MillisToMicros(5), MillisToMicros(2),
                                     /*n=*/200, /*s=*/0.99);
}

std::unique_ptr<DelayModel> MakeDefaultParetoDelay() {
  // alpha = 1.5: finite mean (~45 ms including the floor), infinite
  // variance — a realistic straggler tail reaching seconds.
  return std::make_unique<ParetoDelay>(MillisToMicros(5), /*alpha=*/1.5,
                                       MillisToMicros(20));
}

}  // namespace klink
