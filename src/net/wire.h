#ifndef KLINK_NET_WIRE_H_
#define KLINK_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/event/event.h"

namespace klink {

/// The Klink ingest wire protocol: length-prefixed binary frames carrying
/// stream elements (data events, watermarks with the SWM flag, latency
/// markers) and control frames (session hello, error, end-of-stream) from
/// remote sources into the engine (see DESIGN.md "Network ingest").
///
/// Every frame is an 8-byte header followed by `payload_len` payload bytes;
/// all integers are little-endian:
///
///   offset  size  field
///        0     2  magic        0x4B4C ("KL")
///        2     1  version      kWireVersion
///        3     1  type         FrameType
///        4     4  payload_len  payload bytes that follow
///
/// Element frames have fixed payload layouts (exact length is enforced).
/// Since protocol v2 every element frame starts with a client-assigned
/// per-stream sequence number (1, 2, 3, ... per connection stream) used for
/// exactly-once ingest: the server dedups duplicates after a reconnect and
/// acks durable prefixes so the client can trim its retransmit buffer.
///
///   kData (44 B):      seq u64, event_time i64, ingest_time i64, key u64,
///                      value f64 (IEEE-754 bits), payload_bytes u32
///   kWatermark (25 B): seq u64, event_time i64, ingest_time i64, flags u8
///                      (bit 0 = SWM)
///   kMarker (24 B):    seq u64, event_time i64, ingest_time i64
///   kRetraction (44 B), kUpdate (44 B): same layout as kData — the
///                      late-data correction elements (protocol v3; a v2
///                      peer never sees them because version skew is
///                      rejected at the header)
///
/// Control frames:
///
///   kHello (4 B):         stream_id u32 — must be the first frame on a
///                         connection; binds it to one ingest stream
///   kError (2..514 B):    code u16, utf-8 message — sent by the server
///                         before closing a misbehaving connection
///   kBye (0 B):           graceful end-of-stream
///   kHelloAck (12 B):     stream_id u32, next_seq u64 — server reply to
///                         hello; the first sequence number it expects
///                         (resume cursor after a reconnect/restore)
///   kCheckpointAck (16 B): epoch u64, durable_seq u64 — server notification
///                         that checkpoint `epoch` is durable and covers the
///                         stream prefix up to durable_seq; the client may
///                         discard retained events with seq <= durable_seq
///
/// Decoding is strictly bounds-checked: a frame that is structurally
/// invalid (bad magic/type, wrong payload length for its type, or a length
/// above kMaxPayloadLen) is rejected as malformed without reading past the
/// supplied buffer, and the connection that sent it is closed. A frame
/// whose version byte disagrees with kWireVersion decodes to the distinct
/// kVersionMismatch result so the server can answer version skew with a
/// typed error instead of a generic close.
inline constexpr uint16_t kWireMagic = 0x4B4C;  // "KL"
/// v2: element frames carry sequence numbers; kHelloAck/kCheckpointAck.
/// v3: kRetraction/kUpdate late-data correction element frames.
inline constexpr uint8_t kWireVersion = 3;
inline constexpr size_t kWireHeaderLen = 8;

/// Upper bound on any payload; guards against absurd length prefixes from
/// corrupt or adversarial peers.
inline constexpr uint32_t kMaxPayloadLen = 1u << 20;

/// Upper bound on the simulated payload_bytes field of a data event.
inline constexpr uint32_t kMaxEventPayloadBytes = 1u << 20;

/// Longest error message the encoder will emit / the decoder will accept.
inline constexpr size_t kMaxErrorMessageLen = 512;

enum class FrameType : uint8_t {
  kHello = 1,
  kData = 2,
  kWatermark = 3,
  kMarker = 4,
  kError = 5,
  kBye = 6,
  kHelloAck = 7,
  kCheckpointAck = 8,
  kRetraction = 9,
  kUpdate = 10,
};

/// Returns true for frame types that carry a stream element.
inline bool IsElementFrame(FrameType t) {
  return t == FrameType::kData || t == FrameType::kWatermark ||
         t == FrameType::kMarker || t == FrameType::kRetraction ||
         t == FrameType::kUpdate;
}

/// Error codes carried by kError frames.
enum class WireError : uint16_t {
  kMalformedFrame = 1,
  kUnknownStream = 2,
  kProtocolViolation = 3,  // e.g. element frame before hello, or a seq gap
  kServerShutdown = 4,
  kIdleTimeout = 5,
  kVersionMismatch = 6,  // peer speaks a different protocol version
};

/// One decoded frame. `event`/`seq` are valid for element frames (the
/// event's kind/swm fields are filled from the frame type), `stream_id` for
/// kHello and kHelloAck, `next_seq` for kHelloAck, `epoch`/`durable_seq`
/// for kCheckpointAck, and `error_code`/`error_message` for kError.
struct Frame {
  FrameType type = FrameType::kBye;
  uint32_t stream_id = 0;
  Event event;
  uint64_t seq = 0;
  uint64_t next_seq = 0;
  uint64_t epoch = 0;
  uint64_t durable_seq = 0;
  uint16_t error_code = 0;
  std::string error_message;
};

enum class DecodeResult {
  /// A frame was decoded; `*consumed` bytes were used.
  kOk,
  /// The buffer holds only a prefix of a frame; read more bytes.
  kNeedMore,
  /// The buffer does not start with a valid frame; close the connection.
  kMalformed,
  /// Structurally a frame, but the peer speaks a different protocol
  /// version; reply with WireError::kVersionMismatch and close.
  kVersionMismatch,
};

/// Decodes the frame at the start of `data`. On kOk fills `*frame` and sets
/// `*consumed` to the total frame size (header + payload). Never reads past
/// `data + len`.
DecodeResult DecodeFrame(const uint8_t* data, size_t len, Frame* frame,
                         size_t* consumed);

/// ---- encoding: each appends one frame to `out` -------------------------
void EncodeHello(uint32_t stream_id, std::vector<uint8_t>* out);
/// Encodes a stream element as kData/kWatermark/kMarker from `e.kind`,
/// stamped with the per-stream sequence number `seq`. Checkpoint barriers
/// never cross the wire (they are injected server-side) and encode nothing.
void EncodeEvent(const Event& e, uint64_t seq, std::vector<uint8_t>* out);
void EncodeError(WireError code, const std::string& message,
                 std::vector<uint8_t>* out);
void EncodeBye(std::vector<uint8_t>* out);
void EncodeHelloAck(uint32_t stream_id, uint64_t next_seq,
                    std::vector<uint8_t>* out);
void EncodeCheckpointAck(uint64_t epoch, uint64_t durable_seq,
                         std::vector<uint8_t>* out);

/// Encoded size of an element frame (header + payload), for send budgeting.
size_t EncodedEventSize(const Event& e);

}  // namespace klink

#endif  // KLINK_NET_WIRE_H_
