#include "src/net/wire.h"

#include <algorithm>
#include <cstring>

namespace klink {
namespace {

constexpr size_t kDataPayloadLen = 44;
constexpr size_t kWatermarkPayloadLen = 25;
constexpr size_t kMarkerPayloadLen = 24;
constexpr size_t kHelloPayloadLen = 4;
constexpr size_t kHelloAckPayloadLen = 12;
constexpr size_t kCheckpointAckPayloadLen = 16;

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void PutHeader(FrameType type, uint32_t payload_len,
               std::vector<uint8_t>* out) {
  PutU16(kWireMagic, out);
  out->push_back(kWireVersion);
  out->push_back(static_cast<uint8_t>(type));
  PutU32(payload_len, out);
}

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kUpdate);
}

/// Expected payload length for fixed-size frame types; -1 for variable.
int64_t ExpectedPayloadLen(FrameType t) {
  switch (t) {
    case FrameType::kHello:
      return kHelloPayloadLen;
    case FrameType::kData:
    case FrameType::kRetraction:
    case FrameType::kUpdate:
      return kDataPayloadLen;
    case FrameType::kWatermark:
      return kWatermarkPayloadLen;
    case FrameType::kMarker:
      return kMarkerPayloadLen;
    case FrameType::kBye:
      return 0;
    case FrameType::kError:
      return -1;
    case FrameType::kHelloAck:
      return kHelloAckPayloadLen;
    case FrameType::kCheckpointAck:
      return kCheckpointAckPayloadLen;
  }
  return -1;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

DecodeResult DecodeFrame(const uint8_t* data, size_t len, Frame* frame,
                         size_t* consumed) {
  if (len < kWireHeaderLen) return DecodeResult::kNeedMore;
  if (GetU16(data) != kWireMagic) return DecodeResult::kMalformed;
  if (data[2] != kWireVersion) return DecodeResult::kVersionMismatch;
  if (!ValidType(data[3])) return DecodeResult::kMalformed;
  const FrameType type = static_cast<FrameType>(data[3]);
  const uint32_t payload_len = GetU32(data + 4);
  if (payload_len > kMaxPayloadLen) return DecodeResult::kMalformed;
  const int64_t expected = ExpectedPayloadLen(type);
  if (expected >= 0 && payload_len != static_cast<uint32_t>(expected)) {
    return DecodeResult::kMalformed;
  }
  if (type == FrameType::kError &&
      (payload_len < 2 || payload_len > 2 + kMaxErrorMessageLen)) {
    return DecodeResult::kMalformed;
  }
  if (len < kWireHeaderLen + payload_len) return DecodeResult::kNeedMore;

  const uint8_t* p = data + kWireHeaderLen;
  frame->type = type;
  frame->event = Event{};
  frame->stream_id = 0;
  frame->seq = 0;
  frame->next_seq = 0;
  frame->epoch = 0;
  frame->durable_seq = 0;
  frame->error_code = 0;
  frame->error_message.clear();
  switch (type) {
    case FrameType::kHello:
      frame->stream_id = GetU32(p);
      break;
    case FrameType::kData:
    case FrameType::kRetraction:
    case FrameType::kUpdate: {
      Event& e = frame->event;
      e.kind = type == FrameType::kData ? EventKind::kData
               : type == FrameType::kRetraction ? EventKind::kRetraction
                                                : EventKind::kUpdate;
      frame->seq = GetU64(p);
      e.event_time = static_cast<TimeMicros>(GetU64(p + 8));
      e.ingest_time = static_cast<TimeMicros>(GetU64(p + 16));
      e.key = GetU64(p + 24);
      e.value = BitsToDouble(GetU64(p + 32));
      e.payload_bytes = GetU32(p + 40);
      if (frame->seq == 0 || e.event_time < 0 || e.ingest_time < 0 ||
          e.payload_bytes > kMaxEventPayloadBytes) {
        return DecodeResult::kMalformed;
      }
      break;
    }
    case FrameType::kWatermark: {
      Event& e = frame->event;
      e.kind = EventKind::kWatermark;
      frame->seq = GetU64(p);
      e.event_time = static_cast<TimeMicros>(GetU64(p + 8));
      e.ingest_time = static_cast<TimeMicros>(GetU64(p + 16));
      const uint8_t flags = p[24];
      if ((flags & ~uint8_t{1}) != 0) return DecodeResult::kMalformed;
      e.swm = (flags & 1) != 0;
      e.payload_bytes = 16;
      if (frame->seq == 0 || e.ingest_time < 0) {
        return DecodeResult::kMalformed;
      }
      break;
    }
    case FrameType::kMarker: {
      Event& e = frame->event;
      e.kind = EventKind::kLatencyMarker;
      frame->seq = GetU64(p);
      e.event_time = static_cast<TimeMicros>(GetU64(p + 8));
      e.ingest_time = static_cast<TimeMicros>(GetU64(p + 16));
      e.payload_bytes = 16;
      if (frame->seq == 0 || e.event_time < 0 || e.ingest_time < 0) {
        return DecodeResult::kMalformed;
      }
      break;
    }
    case FrameType::kError:
      frame->error_code = GetU16(p);
      frame->error_message.assign(reinterpret_cast<const char*>(p + 2),
                                  payload_len - 2);
      break;
    case FrameType::kBye:
      break;
    case FrameType::kHelloAck:
      frame->stream_id = GetU32(p);
      frame->next_seq = GetU64(p + 4);
      if (frame->next_seq == 0) return DecodeResult::kMalformed;
      break;
    case FrameType::kCheckpointAck:
      frame->epoch = GetU64(p);
      frame->durable_seq = GetU64(p + 8);
      break;
  }
  *consumed = kWireHeaderLen + payload_len;
  return DecodeResult::kOk;
}

void EncodeHello(uint32_t stream_id, std::vector<uint8_t>* out) {
  PutHeader(FrameType::kHello, kHelloPayloadLen, out);
  PutU32(stream_id, out);
}

void EncodeEvent(const Event& e, uint64_t seq, std::vector<uint8_t>* out) {
  switch (e.kind) {
    case EventKind::kData:
    case EventKind::kRetraction:
    case EventKind::kUpdate:
      PutHeader(e.kind == EventKind::kData        ? FrameType::kData
                : e.kind == EventKind::kRetraction ? FrameType::kRetraction
                                                   : FrameType::kUpdate,
                kDataPayloadLen, out);
      PutU64(seq, out);
      PutU64(static_cast<uint64_t>(e.event_time), out);
      PutU64(static_cast<uint64_t>(e.ingest_time), out);
      PutU64(e.key, out);
      PutU64(DoubleToBits(e.value), out);
      PutU32(e.payload_bytes, out);
      break;
    case EventKind::kWatermark:
      PutHeader(FrameType::kWatermark, kWatermarkPayloadLen, out);
      PutU64(seq, out);
      PutU64(static_cast<uint64_t>(e.event_time), out);
      PutU64(static_cast<uint64_t>(e.ingest_time), out);
      out->push_back(e.swm ? 1 : 0);
      break;
    case EventKind::kLatencyMarker:
      PutHeader(FrameType::kMarker, kMarkerPayloadLen, out);
      PutU64(seq, out);
      PutU64(static_cast<uint64_t>(e.event_time), out);
      PutU64(static_cast<uint64_t>(e.ingest_time), out);
      break;
    case EventKind::kCheckpointBarrier:
      // Barriers are injected by the server-side coordinator; they never
      // cross the ingest wire.
      break;
  }
}

void EncodeError(WireError code, const std::string& message,
                 std::vector<uint8_t>* out) {
  const size_t msg_len = std::min(message.size(), kMaxErrorMessageLen);
  PutHeader(FrameType::kError, static_cast<uint32_t>(2 + msg_len), out);
  PutU16(static_cast<uint16_t>(code), out);
  out->insert(out->end(), message.begin(),
              message.begin() + static_cast<ptrdiff_t>(msg_len));
}

void EncodeBye(std::vector<uint8_t>* out) {
  PutHeader(FrameType::kBye, 0, out);
}

void EncodeHelloAck(uint32_t stream_id, uint64_t next_seq,
                    std::vector<uint8_t>* out) {
  PutHeader(FrameType::kHelloAck, kHelloAckPayloadLen, out);
  PutU32(stream_id, out);
  PutU64(next_seq, out);
}

void EncodeCheckpointAck(uint64_t epoch, uint64_t durable_seq,
                         std::vector<uint8_t>* out) {
  PutHeader(FrameType::kCheckpointAck, kCheckpointAckPayloadLen, out);
  PutU64(epoch, out);
  PutU64(durable_seq, out);
}

size_t EncodedEventSize(const Event& e) {
  switch (e.kind) {
    case EventKind::kData:
    case EventKind::kRetraction:
    case EventKind::kUpdate:
      return kWireHeaderLen + kDataPayloadLen;
    case EventKind::kWatermark:
      return kWireHeaderLen + kWatermarkPayloadLen;
    case EventKind::kLatencyMarker:
      return kWireHeaderLen + kMarkerPayloadLen;
    case EventKind::kCheckpointBarrier:
      return 0;
  }
  return kWireHeaderLen;
}

}  // namespace klink
