#ifndef KLINK_OPERATORS_COUNT_WINDOW_OPERATOR_H_
#define KLINK_OPERATORS_COUNT_WINDOW_OPERATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/operators/aggregate_operator.h"
#include "src/operators/operator.h"

namespace klink {

/// Count-based windowed aggregation (paper Sec. 2.1): a window
/// w_i = <e_k, ..., e_m> with m = k + s - 1 collects exactly `size` events
/// per key; its deadline is the arrival of the size-th event, so it fires
/// immediately on that event rather than on a watermark. Count windows
/// therefore never block on stream progress — watermarks pass straight
/// through (they still sweep nothing here).
class CountWindowOperator final : public Operator {
 public:
  /// Requires size >= 1.
  CountWindowOperator(std::string name, double cost_micros, int64_t size,
                      AggregationKind kind,
                      uint32_t output_payload_bytes = 64);

  /// Allowed lateness is a no-op for count windows: their deadlines are
  /// arrival-count-based, not event-time-based, so no event is ever "late"
  /// relative to a window deadline and nothing is speculatively fired.
  /// Accepted (and validated) so per-query lateness config applies
  /// uniformly to every windowed operator in a pipeline.
  void SetAllowedLateness(DurationMicros lateness) {
    KLINK_CHECK_GE(lateness, 0);
    allowed_lateness_ = lateness;
  }
  DurationMicros allowed_lateness() const { return allowed_lateness_; }

  int64_t window_size() const { return size_; }
  int64_t fired_windows() const { return fired_windows_; }
  /// Count windows hold per-key running state and shrink the stream.
  bool SupportsPartialComputation() const override { return true; }

  static constexpr int64_t kBytesPerKeyState = 48;

  /// ---- re-sharding ----------------------------------------------------
  bool HasKeyedState() const override { return true; }
  void ExportKeyedState(std::vector<KeyedStateEntry>* out) override;
  void ImportKeyedState(const KeyedStateEntry& entry) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  struct Aggregate {
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  double OutputValue(const Aggregate& agg) const;

  int64_t size_;
  DurationMicros allowed_lateness_ = 0;
  AggregationKind kind_;
  uint32_t output_payload_bytes_;
  std::unordered_map<uint64_t, Aggregate> state_;
  int64_t fired_windows_ = 0;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_COUNT_WINDOW_OPERATOR_H_
