#include "src/operators/aggregate_operator.h"

#include <algorithm>

#include "src/common/check.h"

namespace klink {

WindowAggregateOperator::WindowAggregateOperator(
    std::string name, double cost_micros,
    std::unique_ptr<WindowAssigner> assigner, AggregationKind kind,
    uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      assigner_(std::move(assigner)),
      kind_(kind),
      output_payload_bytes_(output_payload_bytes) {
  KLINK_CHECK(assigner_ != nullptr);
  // One result row per key per window; windows absorb many events, so the
  // configured hint reflects a low output/input ratio typical of
  // aggregations. Refined at runtime by measurements.
  set_selectivity_hint(0.05);
}

TimeMicros WindowAggregateOperator::UpcomingDeadline() const {
  if (!panes_.empty()) return panes_.begin()->first.first;
  const TimeMicros wm = MinWatermark();
  return assigner_->NextDeadlineAfter(wm == kNoTime ? 0 : wm);
}

double WindowAggregateOperator::OutputValue(const Aggregate& agg) const {
  switch (kind_) {
    case AggregationKind::kCount:
      return static_cast<double>(agg.count);
    case AggregationKind::kSum:
      return agg.sum;
    case AggregationKind::kAverage:
      return agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(agg.count);
    case AggregationKind::kMax:
      return agg.max;
  }
  return 0.0;
}

void WindowAggregateOperator::FoldData(const Event& e) {
  // OOP late-event policy: drop events at or below the forwarded watermark;
  // their windows already fired (Sec. 2.1/2.2).
  const TimeMicros forwarded = forwarded_min_watermark();
  if (forwarded != kNoTime && e.event_time < forwarded) {
    ++dropped_late_;
    return;
  }
  tracker_.RecordEventDelay(0, e.network_delay());
  scratch_windows_.clear();
  assigner_->AssignWindows(e.event_time, &scratch_windows_);
  for (const WindowSpan& w : scratch_windows_) {
    // Skip panes whose deadline already elapsed (possible for sliding
    // windows when the event is late for some of its panes but not all).
    if (forwarded != kNoTime && w.end <= forwarded) continue;
    auto [pane_it, pane_inserted] = panes_.try_emplace({w.end, w.start});
    if (pane_inserted) AddStateBytes(kBytesPerPane);
    auto [it, inserted] = pane_it->second.try_emplace(e.key);
    if (inserted) {
      ++total_key_states_;
      AddStateBytes(kBytesPerKeyState);
    }
    Aggregate& agg = it->second;
    ++agg.count;
    agg.sum += e.value;
    agg.max = agg.count == 1 ? e.value : std::max(agg.max, e.value);
  }
}

void WindowAggregateOperator::OnData(const Event& e, TimeMicros /*now*/,
                                     Emitter& /*out*/) {
  FoldData(e);
}

void WindowAggregateOperator::ProcessBatch(const Event* events, int64_t n,
                                           BatchClock& clock, Emitter& out) {
  int64_t i = 0;
  while (i < n) {
    if (!events[i].is_data()) {
      Process(events[i], clock.Next(), out);
      ++i;
      continue;
    }
    int64_t j = i + 1;
    while (j < n && events[j].is_data()) ++j;
    const int64_t run = j - i;
    clock.Advance(run);
    NoteDataProcessed(run);
    for (int64_t k = i; k < j; ++k) FoldData(events[k]);
    i = j;
  }
}

void WindowAggregateOperator::OnWatermark(const Event& incoming,
                                          TimeMicros min_watermark,
                                          TimeMicros now, Emitter& out) {
  // Determine whether this watermark elapses any window deadline: it is
  // then the SWM of the epoch even if no pane holds data (stream progress
  // is independent of data presence, Sec. 2.2).
  const TimeMicros prev = forwarded_min_watermark();
  const TimeMicros first_deadline =
      assigner_->NextDeadlineAfter(prev == kNoTime ? 0 : prev);
  const bool sweeps = min_watermark >= first_deadline;
  if (!sweeps) {
    SetForwardSwm(false);
    return;
  }

  // Fire every pane whose deadline elapsed, in deadline order; emit the
  // pane results *before* the base forwards the watermark (invariant ii).
  TimeMicros last_deadline = first_deadline;
  while (!panes_.empty() && panes_.begin()->first.first <= min_watermark) {
    const auto it = panes_.begin();
    const TimeMicros end = it->first.first;
    for (const auto& [key, agg] : it->second) {
      Event result = MakeDataEvent(/*event_time=*/end, /*ingest_time=*/now,
                                   key, OutputValue(agg),
                                   output_payload_bytes_);
      EmitData(result, out);
    }
    const int64_t keys = static_cast<int64_t>(it->second.size());
    total_key_states_ -= keys;
    AddStateBytes(-(kBytesPerPane + keys * kBytesPerKeyState));
    last_deadline = std::max(last_deadline, end);
    panes_.erase(it);
    ++fired_panes_;
  }
  // The largest elapsed deadline, whether or not a pane existed for it.
  const TimeMicros last_elapsed =
      assigner_->NextDeadlineAfter(min_watermark) - assigner_->slide();
  last_deadline = std::max(last_deadline, last_elapsed);

  tracker_.RecordStreamSweep(0, last_deadline, incoming.ingest_time);
  SetForwardSwm(true);
}

}  // namespace klink
