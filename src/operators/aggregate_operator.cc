#include "src/operators/aggregate_operator.h"

#include <algorithm>

#include "src/common/check.h"

namespace klink {

WindowAggregateOperator::WindowAggregateOperator(
    std::string name, double cost_micros,
    std::unique_ptr<WindowAssigner> assigner, AggregationKind kind,
    uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      assigner_(std::move(assigner)),
      kind_(kind),
      output_payload_bytes_(output_payload_bytes) {
  KLINK_CHECK(assigner_ != nullptr);
  // One result row per key per window; windows absorb many events, so the
  // configured hint reflects a low output/input ratio typical of
  // aggregations. Refined at runtime by measurements.
  set_selectivity_hint(0.05);
}

TimeMicros WindowAggregateOperator::UpcomingDeadline() const {
  if (!panes_.empty()) return panes_.begin()->first.first;
  const TimeMicros wm = MinWatermark();
  return assigner_->NextDeadlineAfter(wm == kNoTime ? 0 : wm);
}

double WindowAggregateOperator::OutputValue(const Aggregate& agg) const {
  switch (kind_) {
    case AggregationKind::kCount:
      return static_cast<double>(agg.count);
    case AggregationKind::kSum:
      return agg.sum;
    case AggregationKind::kAverage:
      return agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(agg.count);
    case AggregationKind::kMax:
      return agg.max;
  }
  return 0.0;
}

void WindowAggregateOperator::FoldData(const Event& e) {
  // OOP late-event policy: drop events at or below the forwarded watermark;
  // their windows already fired (Sec. 2.1/2.2).
  const TimeMicros forwarded = forwarded_min_watermark();
  if (forwarded != kNoTime && e.event_time < forwarded) {
    ++dropped_late_;
    return;
  }
  tracker_.RecordEventDelay(0, e.network_delay());
  scratch_windows_.clear();
  assigner_->AssignWindows(e.event_time, &scratch_windows_);
  for (const WindowSpan& w : scratch_windows_) {
    // Skip panes whose deadline already elapsed (possible for sliding
    // windows when the event is late for some of its panes but not all).
    if (forwarded != kNoTime && w.end <= forwarded) continue;
    auto [pane_it, pane_inserted] = panes_.try_emplace({w.end, w.start});
    if (pane_inserted) AddStateBytes(kBytesPerPane);
    auto [it, inserted] = pane_it->second.try_emplace(e.key);
    if (inserted) {
      ++total_key_states_;
      AddStateBytes(kBytesPerKeyState);
    }
    Aggregate& agg = it->second;
    ++agg.count;
    agg.sum += e.value;
    agg.max = agg.count == 1 ? e.value : std::max(agg.max, e.value);
  }
}

void WindowAggregateOperator::OnData(const Event& e, TimeMicros /*now*/,
                                     Emitter& /*out*/) {
  FoldData(e);
}

void WindowAggregateOperator::ProcessBatch(const Event* events, int64_t n,
                                           BatchClock& clock, Emitter& out) {
  int64_t i = 0;
  while (i < n) {
    if (!events[i].is_data()) {
      Process(events[i], clock.Next(), out);
      ++i;
      continue;
    }
    int64_t j = i + 1;
    while (j < n && events[j].is_data()) ++j;
    const int64_t run = j - i;
    clock.Advance(run);
    NoteDataProcessed(run);
    for (int64_t k = i; k < j; ++k) FoldData(events[k]);
    i = j;
  }
}

void WindowAggregateOperator::OnWatermark(const Event& incoming,
                                          TimeMicros min_watermark,
                                          TimeMicros now, Emitter& out) {
  // Determine whether this watermark elapses any window deadline: it is
  // then the SWM of the epoch even if no pane holds data (stream progress
  // is independent of data presence, Sec. 2.2).
  const TimeMicros prev = forwarded_min_watermark();
  const TimeMicros first_deadline =
      assigner_->NextDeadlineAfter(prev == kNoTime ? 0 : prev);
  const bool sweeps = min_watermark >= first_deadline;
  if (!sweeps) {
    SetForwardSwm(false);
    return;
  }

  // Fire every pane whose deadline elapsed, in deadline order; emit the
  // pane results *before* the base forwards the watermark (invariant ii).
  TimeMicros last_deadline = first_deadline;
  while (!panes_.empty() && panes_.begin()->first.first <= min_watermark) {
    const auto it = panes_.begin();
    const TimeMicros end = it->first.first;
    // Emit in sorted-key order: a deterministic order that survives
    // checkpoint/restore, unlike the hash map's iteration order.
    scratch_keys_.clear();
    for (const auto& [key, agg] : it->second) scratch_keys_.push_back(key);
    std::sort(scratch_keys_.begin(), scratch_keys_.end());
    for (const uint64_t key : scratch_keys_) {
      const Aggregate& agg = it->second.find(key)->second;
      Event result = MakeDataEvent(/*event_time=*/end, /*ingest_time=*/now,
                                   key, OutputValue(agg),
                                   output_payload_bytes_);
      EmitData(result, out);
    }
    const int64_t keys = static_cast<int64_t>(it->second.size());
    total_key_states_ -= keys;
    AddStateBytes(-(kBytesPerPane + keys * kBytesPerKeyState));
    last_deadline = std::max(last_deadline, end);
    panes_.erase(it);
    ++fired_panes_;
  }
  // The largest elapsed deadline, whether or not a pane existed for it.
  const TimeMicros last_elapsed =
      assigner_->NextDeadlineAfter(min_watermark) - assigner_->slide();
  last_deadline = std::max(last_deadline, last_elapsed);

  tracker_.RecordStreamSweep(0, last_deadline, incoming.ingest_time);
  SetForwardSwm(true);
}

void WindowAggregateOperator::ExportKeyedState(
    std::vector<KeyedStateEntry>* out) {
  // One blob per key, records appended in pane (deadline) order; keys
  // emitted in sorted order so redistribution is deterministic.
  std::map<uint64_t, StateWriter> blobs;
  int64_t keys = 0;
  for (const auto& [pane_key, pane] : panes_) {
    for (const auto& [key, agg] : pane) {
      StateWriter& w = blobs[key];
      w.PutI64(pane_key.first);   // end
      w.PutI64(pane_key.second);  // start
      w.PutI64(agg.count);
      w.PutDouble(agg.sum);
      w.PutDouble(agg.max);
      ++keys;
    }
  }
  AddStateBytes(-(static_cast<int64_t>(panes_.size()) * kBytesPerPane +
                  keys * kBytesPerKeyState));
  total_key_states_ = 0;
  panes_.clear();
  for (auto& [key, w] : blobs) {
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
  }
}

void WindowAggregateOperator::ImportKeyedState(const KeyedStateEntry& entry) {
  StateReader r(entry.blob);
  while (r.remaining() > 0) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    Aggregate agg;
    agg.count = r.GetI64();
    agg.sum = r.GetDouble();
    agg.max = r.GetDouble();
    KLINK_CHECK(r.ok());
    auto [pane_it, pane_inserted] = panes_.try_emplace({end, start});
    if (pane_inserted) AddStateBytes(kBytesPerPane);
    const auto [it, inserted] = pane_it->second.emplace(entry.key, agg);
    (void)it;
    KLINK_CHECK(inserted);  // each (pane, key) comes from exactly one shard
    ++total_key_states_;
    AddStateBytes(kBytesPerKeyState);
  }
}

void WindowAggregateOperator::SerializeState(StateWriter& w) const {
  w.PutU64(static_cast<uint64_t>(panes_.size()));
  for (const auto& [pane_key, pane] : panes_) {
    w.PutI64(pane_key.first);   // end
    w.PutI64(pane_key.second);  // start
    w.PutU64(static_cast<uint64_t>(pane.size()));
    std::vector<uint64_t> keys;
    keys.reserve(pane.size());
    for (const auto& [key, agg] : pane) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const uint64_t key : keys) {
      const Aggregate& agg = pane.find(key)->second;
      w.PutU64(key);
      w.PutI64(agg.count);
      w.PutDouble(agg.sum);
      w.PutDouble(agg.max);
    }
  }
  w.PutI64(fired_panes_);
  w.PutI64(dropped_late_);
  tracker_.Serialize(w);
}

void WindowAggregateOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(panes_.empty());
  const uint64_t num_panes = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t p = 0; p < num_panes; ++p) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    const uint64_t num_keys = r.GetU64();
    KLINK_CHECK(r.ok());
    Pane& pane = panes_[{end, start}];
    AddStateBytes(kBytesPerPane);
    pane.reserve(static_cast<size_t>(num_keys));
    for (uint64_t k = 0; k < num_keys; ++k) {
      const uint64_t key = r.GetU64();
      Aggregate agg;
      agg.count = r.GetI64();
      agg.sum = r.GetDouble();
      agg.max = r.GetDouble();
      pane.emplace(key, agg);
      ++total_key_states_;
      AddStateBytes(kBytesPerKeyState);
    }
  }
  fired_panes_ = r.GetI64();
  dropped_late_ = r.GetI64();
  tracker_.Restore(r);
  KLINK_CHECK(r.ok());
}

}  // namespace klink
