#include "src/operators/aggregate_operator.h"

#include <algorithm>

#include "src/common/check.h"

namespace klink {

WindowAggregateOperator::WindowAggregateOperator(
    std::string name, double cost_micros,
    std::unique_ptr<WindowAssigner> assigner, AggregationKind kind,
    uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      assigner_(std::move(assigner)),
      kind_(kind),
      output_payload_bytes_(output_payload_bytes) {
  KLINK_CHECK(assigner_ != nullptr);
  // One result row per key per window; windows absorb many events, so the
  // configured hint reflects a low output/input ratio typical of
  // aggregations. Refined at runtime by measurements.
  set_selectivity_hint(0.05);
}

TimeMicros WindowAggregateOperator::UpcomingDeadline() const {
  if (!panes_.empty()) return panes_.begin()->first.first;
  const TimeMicros wm = MinWatermark();
  return assigner_->NextDeadlineAfter(wm == kNoTime ? 0 : wm);
}

void WindowAggregateOperator::SetAllowedLateness(DurationMicros lateness) {
  KLINK_CHECK_GE(lateness, 0);
  KLINK_CHECK(retained_.empty());  // configure before processing starts
  allowed_lateness_ = lateness;
}

double WindowAggregateOperator::OutputValue(const Aggregate& agg) const {
  switch (kind_) {
    case AggregationKind::kCount:
      return static_cast<double>(agg.count);
    case AggregationKind::kSum:
      return agg.sum;
    case AggregationKind::kAverage:
      return agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(agg.count);
    case AggregationKind::kMax:
      return agg.max;
  }
  return 0.0;
}

void WindowAggregateOperator::FoldLateIntoRetained(const WindowSpan& w,
                                                   const Event& e) {
  // The pane fired (or its deadline passed with no data) but is inside the
  // retention horizon: fold and mark the (pane, key) for a correction pair
  // at the next watermark.
  auto [pane_it, pane_inserted] = retained_.try_emplace({w.end, w.start});
  if (pane_inserted) AddStateBytes(kBytesPerPane);
  auto [it, inserted] = pane_it->second.try_emplace(e.key);
  if (inserted) {
    ++retained_key_states_;
    AddStateBytes(kBytesPerRetainedState);
  }
  RetainedEntry& entry = it->second;
  ++entry.agg.count;
  entry.agg.sum += e.value;
  entry.agg.max =
      entry.agg.count == 1 ? e.value : std::max(entry.agg.max, e.value);
  if (dirty_.insert({{w.end, w.start}, e.key}).second) {
    // A refire emits an update, plus a retraction when a result is out.
    pending_correction_elements_ += entry.has_emitted ? 2 : 1;
  }
}

void WindowAggregateOperator::FoldData(const Event& e) {
  // OOP late-event policy: drop events at or below the forwarded watermark
  // (Sec. 2.1/2.2) — unless an allowed-lateness horizon retains their
  // panes past the speculative firing.
  const TimeMicros forwarded = forwarded_min_watermark();
  const bool late = forwarded != kNoTime && e.event_time < forwarded;
  if (late && allowed_lateness_ == 0) {
    ++dropped_late_;
    return;
  }
  if (!late) tracker_.RecordEventDelay(0, e.network_delay());
  scratch_windows_.clear();
  assigner_->AssignWindows(e.event_time, &scratch_windows_);
  bool accepted_late = false;
  for (const WindowSpan& w : scratch_windows_) {
    if (forwarded != kNoTime && w.end <= forwarded) {
      // This pane's deadline already elapsed (a late event, or a sliding
      // window the event is late for). Without lateness: skip, as ever.
      if (allowed_lateness_ == 0) continue;
      if (!WithinLatenessHorizon(w.end, forwarded, allowed_lateness_)) {
        continue;  // beyond the horizon: this pane's result is final
      }
      FoldLateIntoRetained(w, e);
      accepted_late = true;
      continue;
    }
    auto [pane_it, pane_inserted] = panes_.try_emplace({w.end, w.start});
    if (pane_inserted) AddStateBytes(kBytesPerPane);
    auto [it, inserted] = pane_it->second.try_emplace(e.key);
    if (inserted) {
      ++total_key_states_;
      AddStateBytes(kBytesPerKeyState);
    }
    Aggregate& agg = it->second;
    ++agg.count;
    agg.sum += e.value;
    agg.max = agg.count == 1 ? e.value : std::max(agg.max, e.value);
    if (late) accepted_late = true;  // below-watermark pane still open
  }
  if (late) {
    if (accepted_late) {
      ++late_.late_accepted;
      tracker_.RecordLateEventDelay(0, e.network_delay());
    } else {
      ++late_.late_dropped_beyond_horizon;
    }
  }
}

void WindowAggregateOperator::OnData(const Event& e, TimeMicros /*now*/,
                                     Emitter& /*out*/) {
  FoldData(e);
}

void WindowAggregateOperator::ProcessBatch(const Event* events, int64_t n,
                                           BatchClock& clock, Emitter& out) {
  int64_t i = 0;
  while (i < n) {
    if (!events[i].is_data()) {
      Process(events[i], clock.Next(), out);
      ++i;
      continue;
    }
    int64_t j = i + 1;
    while (j < n && events[j].is_data()) ++j;
    const int64_t run = j - i;
    clock.Advance(run);
    NoteDataProcessed(run);
    for (int64_t k = i; k < j; ++k) FoldData(events[k]);
    i = j;
  }
}

void WindowAggregateOperator::FlushRefires(TimeMicros now, Emitter& out) {
  // Dirty marks iterate in (end, start, key) order — the canonical order —
  // and every mark's pane end precedes any deadline this watermark can
  // newly elapse, so corrections flush before fresh firings.
  for (const auto& [pane_key, key] : dirty_) {
    const auto pane_it = retained_.find(pane_key);
    KLINK_CHECK(pane_it != retained_.end());
    const auto it = pane_it->second.find(key);
    KLINK_CHECK(it != pane_it->second.end());
    RetainedEntry& entry = it->second;
    if (entry.has_emitted) {
      EmitData(MakeRetractionEvent(/*event_time=*/pane_key.first,
                                   /*ingest_time=*/now, key, entry.emitted,
                                   output_payload_bytes_),
               out);
      ++late_.retractions_emitted;
    }
    const double corrected = OutputValue(entry.agg);
    EmitData(MakeUpdateEvent(/*event_time=*/pane_key.first,
                             /*ingest_time=*/now, key, corrected,
                             output_payload_bytes_),
             out);
    ++late_.updates_emitted;
    entry.emitted = corrected;
    entry.has_emitted = true;
  }
  dirty_.clear();
  pending_correction_elements_ = 0;
}

void WindowAggregateOperator::EvictRetained(TimeMicros min_watermark) {
  while (!retained_.empty() &&
         !WithinLatenessHorizon(retained_.begin()->first.first, min_watermark,
                                allowed_lateness_)) {
    const auto it = retained_.begin();
    const int64_t keys = static_cast<int64_t>(it->second.size());
    retained_key_states_ -= keys;
    AddStateBytes(-(kBytesPerPane + keys * kBytesPerRetainedState));
    retained_.erase(it);
  }
}

void WindowAggregateOperator::OnWatermark(const Event& incoming,
                                          TimeMicros min_watermark,
                                          TimeMicros now, Emitter& out) {
  // Corrections for already-fired panes flush before anything else (their
  // deadlines precede every pane fired below), then expired retained panes
  // are released.
  if (allowed_lateness_ > 0) {
    FlushRefires(now, out);
    EvictRetained(min_watermark);
  }

  // Determine whether this watermark elapses any window deadline: it is
  // then the SWM of the epoch even if no pane holds data (stream progress
  // is independent of data presence, Sec. 2.2).
  const TimeMicros prev = forwarded_min_watermark();
  const TimeMicros first_deadline =
      assigner_->NextDeadlineAfter(prev == kNoTime ? 0 : prev);
  const bool sweeps = min_watermark >= first_deadline;
  if (!sweeps) {
    SetForwardSwm(false);
    return;
  }

  // Fire every pane whose deadline elapsed, in deadline order; emit the
  // pane results *before* the base forwards the watermark (invariant ii).
  TimeMicros last_deadline = first_deadline;
  while (!panes_.empty() && panes_.begin()->first.first <= min_watermark) {
    const auto it = panes_.begin();
    const TimeMicros end = it->first.first;
    // Emit in sorted-key order: a deterministic order that survives
    // checkpoint/restore, unlike the hash map's iteration order.
    scratch_keys_.clear();
    for (const auto& [key, agg] : it->second) scratch_keys_.push_back(key);
    std::sort(scratch_keys_.begin(), scratch_keys_.end());
    for (const uint64_t key : scratch_keys_) {
      const Aggregate& agg = it->second.find(key)->second;
      Event result = MakeDataEvent(/*event_time=*/end, /*ingest_time=*/now,
                                   key, OutputValue(agg),
                                   output_payload_bytes_);
      EmitData(result, out);
    }
    const int64_t keys = static_cast<int64_t>(it->second.size());
    if (allowed_lateness_ > 0 &&
        WithinLatenessHorizon(end, min_watermark, allowed_lateness_)) {
      // Speculative firing: the emitted results above may be retracted, so
      // the pane's keyed state moves to the retained store together with
      // each key's emitted value.
      const auto [rit, rinserted] = retained_.try_emplace(it->first);
      KLINK_CHECK(rinserted);  // a pane fires exactly once
      AddStateBytes(kBytesPerPane);
      for (const auto& [key, agg] : it->second) {
        rit->second.emplace(key,
                            RetainedEntry{agg, OutputValue(agg), true});
        ++retained_key_states_;
        AddStateBytes(kBytesPerRetainedState);
      }
    }
    total_key_states_ -= keys;
    AddStateBytes(-(kBytesPerPane + keys * kBytesPerKeyState));
    last_deadline = std::max(last_deadline, end);
    panes_.erase(it);
    ++fired_panes_;
  }
  // The largest elapsed deadline, whether or not a pane existed for it.
  const TimeMicros last_elapsed =
      assigner_->NextDeadlineAfter(min_watermark) - assigner_->slide();
  last_deadline = std::max(last_deadline, last_elapsed);

  tracker_.RecordStreamSweep(0, last_deadline, incoming.ingest_time);
  SetForwardSwm(true);
}

void WindowAggregateOperator::ExportKeyedState(
    std::vector<KeyedStateEntry>* out) {
  // One blob per key: open-pane records then retained-pane records (each
  // in pane/deadline order), so redistribution moves the full late-data
  // context — aggregate, emitted value, pending-refire mark — with the
  // key. Keys emitted in sorted order so redistribution is deterministic.
  struct KeyBlob {
    StateWriter open;
    StateWriter retained;
    uint32_t open_records = 0;
    uint32_t retained_records = 0;
  };
  std::map<uint64_t, KeyBlob> blobs;
  int64_t keys = 0;
  for (const auto& [pane_key, pane] : panes_) {
    for (const auto& [key, agg] : pane) {
      KeyBlob& b = blobs[key];
      b.open.PutI64(pane_key.first);   // end
      b.open.PutI64(pane_key.second);  // start
      b.open.PutI64(agg.count);
      b.open.PutDouble(agg.sum);
      b.open.PutDouble(agg.max);
      ++b.open_records;
      ++keys;
    }
  }
  int64_t retained_keys = 0;
  for (const auto& [pane_key, pane] : retained_) {
    for (const auto& [key, entry] : pane) {
      KeyBlob& b = blobs[key];
      b.retained.PutI64(pane_key.first);
      b.retained.PutI64(pane_key.second);
      b.retained.PutI64(entry.agg.count);
      b.retained.PutDouble(entry.agg.sum);
      b.retained.PutDouble(entry.agg.max);
      b.retained.PutBool(entry.has_emitted);
      b.retained.PutDouble(entry.emitted);
      b.retained.PutBool(dirty_.count({pane_key, key}) != 0);
      ++b.retained_records;
      ++retained_keys;
    }
  }
  AddStateBytes(-(static_cast<int64_t>(panes_.size()) * kBytesPerPane +
                  keys * kBytesPerKeyState));
  AddStateBytes(-(static_cast<int64_t>(retained_.size()) * kBytesPerPane +
                  retained_keys * kBytesPerRetainedState));
  total_key_states_ = 0;
  retained_key_states_ = 0;
  panes_.clear();
  retained_.clear();
  dirty_.clear();
  pending_correction_elements_ = 0;
  for (auto& [key, b] : blobs) {
    StateWriter w;
    w.PutU32(b.open_records);
    w.PutU32(b.retained_records);
    const std::vector<uint8_t> open_bytes = b.open.TakeBytes();
    const std::vector<uint8_t> retained_bytes = b.retained.TakeBytes();
    w.PutBytes(open_bytes.data(), open_bytes.size());
    w.PutBytes(retained_bytes.data(), retained_bytes.size());
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
  }
}

void WindowAggregateOperator::ImportKeyedState(const KeyedStateEntry& entry) {
  StateReader r(entry.blob);
  const uint32_t open_records = r.GetU32();
  const uint32_t retained_records = r.GetU32();
  KLINK_CHECK(r.ok());
  for (uint32_t i = 0; i < open_records; ++i) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    Aggregate agg;
    agg.count = r.GetI64();
    agg.sum = r.GetDouble();
    agg.max = r.GetDouble();
    KLINK_CHECK(r.ok());
    auto [pane_it, pane_inserted] = panes_.try_emplace({end, start});
    if (pane_inserted) AddStateBytes(kBytesPerPane);
    const auto [it, inserted] = pane_it->second.emplace(entry.key, agg);
    (void)it;
    KLINK_CHECK(inserted);  // each (pane, key) comes from exactly one shard
    ++total_key_states_;
    AddStateBytes(kBytesPerKeyState);
  }
  for (uint32_t i = 0; i < retained_records; ++i) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    RetainedEntry re;
    re.agg.count = r.GetI64();
    re.agg.sum = r.GetDouble();
    re.agg.max = r.GetDouble();
    re.has_emitted = r.GetBool();
    re.emitted = r.GetDouble();
    const bool dirty = r.GetBool();
    KLINK_CHECK(r.ok());
    auto [pane_it, pane_inserted] = retained_.try_emplace({end, start});
    if (pane_inserted) AddStateBytes(kBytesPerPane);
    const auto [it, inserted] = pane_it->second.emplace(entry.key, re);
    (void)it;
    KLINK_CHECK(inserted);
    ++retained_key_states_;
    AddStateBytes(kBytesPerRetainedState);
    if (dirty) {
      KLINK_CHECK(dirty_.insert({{end, start}, entry.key}).second);
      pending_correction_elements_ += re.has_emitted ? 2 : 1;
    }
  }
  KLINK_CHECK(r.AtEnd());
}

void WindowAggregateOperator::SerializeState(StateWriter& w) const {
  w.PutU64(static_cast<uint64_t>(panes_.size()));
  for (const auto& [pane_key, pane] : panes_) {
    w.PutI64(pane_key.first);   // end
    w.PutI64(pane_key.second);  // start
    w.PutU64(static_cast<uint64_t>(pane.size()));
    std::vector<uint64_t> keys;
    keys.reserve(pane.size());
    for (const auto& [key, agg] : pane) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const uint64_t key : keys) {
      const Aggregate& agg = pane.find(key)->second;
      w.PutU64(key);
      w.PutI64(agg.count);
      w.PutDouble(agg.sum);
      w.PutDouble(agg.max);
    }
  }
  w.PutI64(fired_panes_);
  w.PutI64(dropped_late_);
  // Lateness subsystem state: retained panes (sorted pane order, sorted
  // keys within), dirty refire marks, and the late-event counters.
  w.PutU64(static_cast<uint64_t>(retained_.size()));
  for (const auto& [pane_key, pane] : retained_) {
    w.PutI64(pane_key.first);   // end
    w.PutI64(pane_key.second);  // start
    w.PutU64(static_cast<uint64_t>(pane.size()));
    std::vector<uint64_t> keys;
    keys.reserve(pane.size());
    for (const auto& [key, entry] : pane) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const uint64_t key : keys) {
      const RetainedEntry& entry = pane.find(key)->second;
      w.PutU64(key);
      w.PutI64(entry.agg.count);
      w.PutDouble(entry.agg.sum);
      w.PutDouble(entry.agg.max);
      w.PutBool(entry.has_emitted);
      w.PutDouble(entry.emitted);
    }
  }
  w.PutU64(static_cast<uint64_t>(dirty_.size()));
  for (const auto& [pane_key, key] : dirty_) {
    w.PutI64(pane_key.first);
    w.PutI64(pane_key.second);
    w.PutU64(key);
  }
  late_.Serialize(w);
  tracker_.Serialize(w);
}

void WindowAggregateOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(panes_.empty());
  const uint64_t num_panes = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t p = 0; p < num_panes; ++p) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    const uint64_t num_keys = r.GetU64();
    KLINK_CHECK(r.ok());
    Pane& pane = panes_[{end, start}];
    AddStateBytes(kBytesPerPane);
    pane.reserve(static_cast<size_t>(num_keys));
    for (uint64_t k = 0; k < num_keys; ++k) {
      const uint64_t key = r.GetU64();
      Aggregate agg;
      agg.count = r.GetI64();
      agg.sum = r.GetDouble();
      agg.max = r.GetDouble();
      pane.emplace(key, agg);
      ++total_key_states_;
      AddStateBytes(kBytesPerKeyState);
    }
  }
  fired_panes_ = r.GetI64();
  dropped_late_ = r.GetI64();
  KLINK_CHECK(retained_.empty());
  const uint64_t num_retained = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t p = 0; p < num_retained; ++p) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    const uint64_t num_keys = r.GetU64();
    KLINK_CHECK(r.ok());
    RetainedPane& pane = retained_[{end, start}];
    AddStateBytes(kBytesPerPane);
    pane.reserve(static_cast<size_t>(num_keys));
    for (uint64_t k = 0; k < num_keys; ++k) {
      const uint64_t key = r.GetU64();
      RetainedEntry entry;
      entry.agg.count = r.GetI64();
      entry.agg.sum = r.GetDouble();
      entry.agg.max = r.GetDouble();
      entry.has_emitted = r.GetBool();
      entry.emitted = r.GetDouble();
      pane.emplace(key, entry);
      ++retained_key_states_;
      AddStateBytes(kBytesPerRetainedState);
    }
  }
  const uint64_t num_dirty = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t d = 0; d < num_dirty; ++d) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    const uint64_t key = r.GetU64();
    KLINK_CHECK(r.ok());
    KLINK_CHECK(dirty_.insert({{end, start}, key}).second);
    const auto pane_it = retained_.find({end, start});
    KLINK_CHECK(pane_it != retained_.end());
    const auto it = pane_it->second.find(key);
    KLINK_CHECK(it != pane_it->second.end());
    pending_correction_elements_ += it->second.has_emitted ? 2 : 1;
  }
  late_.Restore(r);
  tracker_.Restore(r);
  KLINK_CHECK(r.ok());
}

}  // namespace klink
