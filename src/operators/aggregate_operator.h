#ifndef KLINK_OPERATORS_AGGREGATE_OPERATOR_H_
#define KLINK_OPERATORS_AGGREGATE_OPERATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/operators/operator.h"
#include "src/window/lateness.h"
#include "src/window/swm_tracker.h"
#include "src/window/window_assigner.h"

namespace klink {

/// Aggregation applied per key within each window pane.
enum class AggregationKind : uint8_t { kCount, kSum, kAverage, kMax };

/// Blocking windowed aggregation keyed by event key.
///
/// Data events are folded online into per-(window, key) aggregate state —
/// a partial computation in the sense of Sec. 3.4, so queue volume shrinks
/// as events are absorbed into panes. A watermark whose timestamp elapses
/// one or more pane deadlines is a sweeping watermark (SWM): the operator
/// emits one result event per key of each elapsed pane, in deadline order,
/// and then the base class forwards the watermark flagged as SWM
/// (invariant ii of Sec. 2.2). Late data events (event_time below the last
/// forwarded watermark) are dropped, the OOP policy of Sec. 2.1 — unless
/// an allowed-lateness horizon is configured (SetAllowedLateness): then a
/// fired pane's keyed state is retained until `watermark >= deadline +
/// lateness`, late arrivals inside the horizon fold into it, and the next
/// watermark flushes one retraction+update pair per touched (pane, key)
/// before any new firing (window/lateness.h).
class WindowAggregateOperator final : public Operator {
 public:
  WindowAggregateOperator(std::string name, double cost_micros,
                          std::unique_ptr<WindowAssigner> assigner,
                          AggregationKind kind,
                          uint32_t output_payload_bytes = 64);

  /// Enables speculative firing with the given retention horizon (0 keeps
  /// the strict drop policy). Must be set before processing starts.
  void SetAllowedLateness(DurationMicros lateness);
  DurationMicros allowed_lateness() const { return allowed_lateness_; }

  /// ---- Operator overrides -------------------------------------------
  bool IsWindowed() const override { return true; }
  bool SupportsPartialComputation() const override { return true; }
  TimeMicros UpcomingDeadline() const override;
  const SwmTracker* swm_tracker() const override { return &tracker_; }
  DurationMicros DeadlinePeriod() const override { return assigner_->slide(); }

  /// Batch fast path: folds runs of data elements into pane state without
  /// the per-element dispatch (data events neither read the clock nor
  /// emit, so only the fold itself remains).
  void ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                    Emitter& out) override;

  /// ---- introspection -------------------------------------------------
  const WindowAssigner& assigner() const { return *assigner_; }
  int64_t fired_panes() const { return fired_panes_; }
  int64_t swm_count() const { return tracker_.stream(0).epoch; }
  int64_t dropped_late_events() const { return dropped_late_; }
  int64_t open_panes() const { return static_cast<int64_t>(panes_.size()); }
  int64_t retained_panes() const {
    return static_cast<int64_t>(retained_.size());
  }
  const LateEventCounters& late_counters() const { return late_; }
  int64_t PendingRefires() const override {
    return pending_correction_elements_;
  }

  /// Simulated state bytes per (window, key) aggregate entry.
  static constexpr int64_t kBytesPerKeyState = 48;
  /// Simulated fixed state bytes per open pane.
  static constexpr int64_t kBytesPerPane = 64;
  /// Simulated state bytes per retained (speculatively fired) key entry:
  /// the aggregate plus the emitted value needed for its retraction.
  static constexpr int64_t kBytesPerRetainedState = 64;

  /// ---- re-sharding ----------------------------------------------------
  /// Keyed state moves between shards as per-key blobs of
  /// (end, start, count, sum, max) pane records.
  bool HasKeyedState() const override { return true; }
  void ExportKeyedState(std::vector<KeyedStateEntry>* out) override;
  void ImportKeyedState(const KeyedStateEntry& entry) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  struct Aggregate {
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };
  // Panes keyed by (end, start) so iteration order is deadline order.
  using PaneKey = std::pair<TimeMicros, TimeMicros>;
  using Pane = std::unordered_map<uint64_t, Aggregate>;

  /// A speculatively fired pane's per-key state: the live aggregate plus
  /// the last emitted result, which the next refire must retract.
  struct RetainedEntry {
    Aggregate agg;
    double emitted = 0.0;
    bool has_emitted = false;
  };
  using RetainedPane = std::unordered_map<uint64_t, RetainedEntry>;

  double OutputValue(const Aggregate& agg) const;
  /// Folds one data element into pane state (the OnData body).
  void FoldData(const Event& e);
  /// Folds a late element into the retained pane for window `w`.
  void FoldLateIntoRetained(const WindowSpan& w, const Event& e);
  /// Emits the pending retraction+update pairs in (end, start, key) order.
  void FlushRefires(TimeMicros now, Emitter& out);
  /// Drops retained panes whose retention horizon `min_watermark` passed.
  void EvictRetained(TimeMicros min_watermark);

  std::unique_ptr<WindowAssigner> assigner_;
  AggregationKind kind_;
  uint32_t output_payload_bytes_;
  std::map<PaneKey, Pane> panes_;
  /// Fired panes still inside the lateness horizon, by deadline.
  std::map<PaneKey, RetainedPane> retained_;
  /// (pane, key) marks with a pending correction pair; iteration order is
  /// the canonical refire order.
  std::set<std::pair<PaneKey, uint64_t>> dirty_;
  DurationMicros allowed_lateness_ = 0;
  LateEventCounters late_;
  int64_t pending_correction_elements_ = 0;
  int64_t retained_key_states_ = 0;
  SwmTracker tracker_{1};
  int64_t total_key_states_ = 0;  // sum of per-pane key counts
  int64_t fired_panes_ = 0;
  int64_t dropped_late_ = 0;
  std::vector<WindowSpan> scratch_windows_;
  /// Scratch for firing panes in sorted-key order: hash-map iteration
  /// order is an implementation detail that would diverge between an
  /// uninterrupted run and a checkpoint-restored one.
  std::vector<uint64_t> scratch_keys_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_AGGREGATE_OPERATOR_H_
