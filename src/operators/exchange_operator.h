#ifndef KLINK_OPERATORS_EXCHANGE_OPERATOR_H_
#define KLINK_OPERATORS_EXCHANGE_OPERATOR_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/event/stream_queue.h"
#include "src/operators/operator.h"

namespace klink {

/// Finalizer-quality 64-bit mix (splitmix64). Shard routing and re-shard
/// state redistribution must agree on this exact function: an event for key
/// k and the keyed state for k must always land on the same shard.
inline uint64_t ShardMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Shard index of `key` among `num_shards` active shards.
inline int ShardOf(uint64_t key, int num_shards) {
  return static_cast<int>(ShardMix(key) % static_cast<uint64_t>(num_shards));
}

/// Splits a keyed stream across per-shard input queues by key hash.
///
/// The partition is a unary operator whose output fans out: data events are
/// routed to `ShardOf(key, active_shards)`, while control elements
/// (watermarks, latency markers, checkpoint barriers) are broadcast to all
/// `max_shards` queues — active *and* inactive — so every shard's
/// watermark/barrier bookkeeping stays current and activating a shard at a
/// re-shard needs only a state import, not a control replay. Fan-out is
/// impossible through the single-consumer Edge graph, so the partition
/// routes through its own `inline_emitter()` (see Operator) targeting
/// queues wired by the PipelineBuilder.
///
/// Live re-sharding: ArmReshard(new_count, pause_at_epoch) makes the
/// partition pause *immediately after broadcasting* the barrier of epoch
/// `pause_at_epoch`. While paused, every emission is appended to an ordered
/// hold buffer instead of being routed; the ReshardController waits for the
/// shard queues to drain to that barrier, redistributes keyed state, then
/// calls CompleteReshard() which switches the active count and replays the
/// hold buffer through normal routing. The protocol fields (armed count,
/// pause epoch, paused flag) are checkpointed, so a crash between arm and
/// completion restores mid-protocol and the controller adopts and finishes
/// the re-shard after recovery. The hold buffer itself is NOT checkpointed:
/// a barrier that aligns while paused is itself held, so it reaches the
/// shards *behind* the held elements and their snapshots of that epoch
/// already include them (see SerializeState).
class PartitionExchangeOperator final : public Operator {
 public:
  PartitionExchangeOperator(std::string name, double cost_micros,
                            int active_shards, int max_shards);

  /// Wires the per-shard target queues (size max_shards, non-owning).
  /// Called once by the PipelineBuilder after the shard operators exist.
  void SetTargets(std::vector<StreamQueue*> targets);

  int active_shards() const { return active_shards_; }
  int max_shards() const { return max_shards_; }
  bool reshard_paused() const { return paused_; }
  int pending_shards() const { return pending_new_count_; }
  uint64_t last_broadcast_epoch() const { return last_broadcast_epoch_; }
  int64_t held_elements() const { return static_cast<int64_t>(hold_.size()); }

  /// Requests a re-shard to `new_count` active shards, pausing right after
  /// the barrier of epoch `pause_at_epoch` is broadcast. The controller
  /// arms every partition of a query with the same epoch so multi-input
  /// shard operators (joins) never see a barrier from one partition that
  /// the other is holding back.
  void ArmReshard(int new_count, uint64_t pause_at_epoch);

  /// Switches to the armed shard count and replays held elements.
  void CompleteReshard();

  /// ---- Operator overrides --------------------------------------------
  Emitter* inline_emitter() override { return &router_; }
  void ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                    Emitter& out) override;

 protected:
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  /// The partition's private emitter: routes data by key hash, broadcasts
  /// controls, and appends to the hold buffer while paused.
  class Router final : public Emitter {
   public:
    explicit Router(PartitionExchangeOperator* owner) : owner_(owner) {}
    void Emit(const Event& e) override { owner_->Route(e); }

   private:
    PartitionExchangeOperator* owner_;
  };

  void Route(const Event& e);

  int active_shards_;
  const int max_shards_;
  std::vector<StreamQueue*> targets_;
  Router router_{this};

  /// Re-shard protocol state (all checkpointed).
  int pending_new_count_ = 0;  // 0 = no re-shard armed
  uint64_t pause_at_epoch_ = 0;
  bool paused_ = false;
  uint64_t last_broadcast_epoch_ = 0;
  std::vector<Event> hold_;
};

/// Merges per-shard streams back into one: the inverse exchange placed
/// between the shard operators and the rest of the query.
///
/// One input per (max) shard. Watermark merging is the base Operator's
/// min-across-inputs rule; an inactive or key-starved shard still forwards
/// every broadcast watermark, so an empty shard never stalls the merged
/// watermark. Data events are buffered per *segment* — the span between
/// consecutive watermarks on their input — and flushed when the merged
/// watermark closes that segment, sorted by (event_time, key, value bits).
/// Because the partitions broadcast an identical control sequence to every
/// shard, segment membership is invariant under shard count and scheduling,
/// and the canonical flush order makes the merged output byte-identical
/// across shard counts, executors, and a mid-run re-shard.
///
/// Latency markers arrive once per shard; the merge forwards one copy when
/// the minimum per-input marker count advances (the copies are identical).
/// Checkpoint barriers align across all inputs in the base class, which
/// emits exactly one downstream barrier.
class MergeExchangeOperator final : public Operator {
 public:
  /// Simulated per-buffered-event overhead (mirrors StreamQueue's).
  static constexpr int64_t kPerBufferedOverhead = 32;

  MergeExchangeOperator(std::string name, double cost_micros, int num_shards);

  int64_t buffered_events() const { return buffered_events_; }
  int64_t flushed_segments() const { return flushed_; }

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void OnStreamWatermark(const Event& incoming, int stream) override;
  void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out) override;
  /// Retraction/update pairs from late refires buffer into the same
  /// watermark segment as data and flush in the same canonical order (the
  /// kind rank puts a retraction before the update that replaces it).
  void OnRetraction(const Event& e, TimeMicros now, Emitter& out) override;
  void OnUpdate(const Event& e, TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  /// Appends a keyed element to its input's open segment.
  void BufferElement(const Event& e);

  struct Segment {
    std::vector<Event> events;
    int64_t bytes = 0;
    bool swm = false;
  };

  /// Watermarks seen per input = index of the segment that input is
  /// currently filling.
  std::vector<int64_t> seen_watermarks_;
  /// Marker de-duplication: per-input seen counts and the forwarded count.
  std::vector<int64_t> seen_markers_;
  int64_t forwarded_markers_ = 0;
  /// Open segments by index; flushed in order as the merged watermark
  /// advances.
  std::map<int64_t, Segment> buffers_;
  int64_t flushed_ = 0;
  int64_t buffered_events_ = 0;
  std::vector<Event> flush_scratch_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_EXCHANGE_OPERATOR_H_
