#ifndef KLINK_OPERATORS_FILTER_OPERATOR_H_
#define KLINK_OPERATORS_FILTER_OPERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/operators/operator.h"

namespace klink {

/// Stateless predicate filter. Selectivity < 1 makes filters the memory
/// manager's preferred reducers of in-flight volume (Sec. 3.4).
class FilterOperator final : public Operator {
 public:
  using PredicateFn = std::function<bool(const Event&)>;

  /// Keeps elements satisfying `keep`. The selectivity hint is set from
  /// `expected_pass_rate` so schedulers have an estimate before runtime
  /// measurements accumulate.
  FilterOperator(std::string name, double cost_micros, PredicateFn keep,
                 double expected_pass_rate);

  /// Convenience: deterministic hash-based filter passing approximately
  /// `pass_rate` of elements, keyed on the event key so the decision is
  /// stable per key.
  static PredicateFn HashPassRate(double pass_rate);

  /// Batch fast path: collects passing elements of each data run into a
  /// scratch buffer and emits them with one accounting update.
  void ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                    Emitter& out) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;

 private:
  PredicateFn keep_;
  std::vector<Event> batch_scratch_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_FILTER_OPERATOR_H_
