#ifndef KLINK_OPERATORS_REORDER_OPERATOR_H_
#define KLINK_OPERATORS_REORDER_OPERATOR_H_

#include <queue>
#include <string>
#include <vector>

#include "src/operators/operator.h"

namespace klink {

/// In-order processing (IOP) support operator (paper Sec. 2.1): buffers
/// data events and releases them sorted by event-time once a watermark
/// guarantees their completeness — every buffered event with
/// event_time <= watermark is emitted in timestamp order before the
/// watermark is forwarded. Downstream operators then observe a stream
/// ordered by event-time, at the cost of the buffering delay and memory
/// that make IOP "perilously" expensive compared to OOP (Sec. 2.1) — the
/// ablation bench quantifies exactly that overhead.
class ReorderOperator final : public Operator {
 public:
  ReorderOperator(std::string name, double cost_micros);

  int64_t buffered_events() const {
    return static_cast<int64_t>(buffer_.size());
  }

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  /// Latency markers are part of the stream: IOP reorders them too, so
  /// they measure the true propagation overhead of in-order processing.
  void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;

 private:
  struct ByEventTime {
    bool operator()(const Event& a, const Event& b) const {
      return a.event_time > b.event_time;  // min-heap on event time
    }
  };

  std::priority_queue<Event, std::vector<Event>, ByEventTime> buffer_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_REORDER_OPERATOR_H_
