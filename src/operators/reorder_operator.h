#ifndef KLINK_OPERATORS_REORDER_OPERATOR_H_
#define KLINK_OPERATORS_REORDER_OPERATOR_H_

#include <queue>
#include <string>
#include <vector>

#include "src/operators/operator.h"

namespace klink {

/// In-order processing (IOP) support operator (paper Sec. 2.1): buffers
/// data events and releases them sorted by event-time once a watermark
/// guarantees their completeness — every buffered event with
/// event_time <= watermark is emitted in timestamp order before the
/// watermark is forwarded. Downstream operators then observe a stream
/// ordered by event-time, at the cost of the buffering delay and memory
/// that make IOP "perilously" expensive compared to OOP (Sec. 2.1) — the
/// ablation bench quantifies exactly that overhead.
class ReorderOperator final : public Operator {
 public:
  ReorderOperator(std::string name, double cost_micros);

  int64_t buffered_events() const {
    return static_cast<int64_t>(buffer_.size());
  }

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  /// Latency markers are part of the stream: IOP reorders them too, so
  /// they measure the true propagation overhead of in-order processing.
  void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  /// Buffered event plus its arrival sequence: ties on event_time release
  /// in arrival order — a total order that is deterministic and survives
  /// checkpoint/restore, unlike the heap's internal layout.
  struct Entry {
    Event event;
    uint64_t arrival = 0;
  };
  struct ByEventTime {
    bool operator()(const Entry& a, const Entry& b) const {
      // Min-heap on (event_time, arrival).
      if (a.event.event_time != b.event.event_time) {
        return a.event.event_time > b.event.event_time;
      }
      return a.arrival > b.arrival;
    }
  };

  void Buffer(const Event& e);

  std::priority_queue<Entry, std::vector<Entry>, ByEventTime> buffer_;
  uint64_t next_arrival_ = 0;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_REORDER_OPERATOR_H_
