#ifndef KLINK_OPERATORS_MAP_OPERATOR_H_
#define KLINK_OPERATORS_MAP_OPERATOR_H_

#include <functional>
#include <string>

#include "src/operators/operator.h"

namespace klink {

/// Stateless one-in/one-out transform (projection, enrichment, key
/// extraction). Selectivity is exactly 1.
class MapOperator final : public Operator {
 public:
  /// Transforms the element in place. Null means identity.
  using TransformFn = std::function<void(Event&)>;

  MapOperator(std::string name, double cost_micros,
              TransformFn transform = nullptr);

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;

 private:
  TransformFn transform_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_MAP_OPERATOR_H_
