#ifndef KLINK_OPERATORS_MAP_OPERATOR_H_
#define KLINK_OPERATORS_MAP_OPERATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/operators/operator.h"

namespace klink {

/// Stateless one-in/one-out transform (projection, enrichment, key
/// extraction). Selectivity is exactly 1.
class MapOperator final : public Operator {
 public:
  /// Transforms the element in place. Null means identity.
  using TransformFn = std::function<void(Event&)>;

  MapOperator(std::string name, double cost_micros,
              TransformFn transform = nullptr);

  /// Batch fast path: transforms runs of data elements in place in a
  /// scratch buffer and emits each run with one accounting update. An
  /// identity map forwards runs with no copy at all.
  void ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                    Emitter& out) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;

 private:
  TransformFn transform_;
  std::vector<Event> batch_scratch_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_MAP_OPERATOR_H_
