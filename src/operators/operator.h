#ifndef KLINK_OPERATORS_OPERATOR_H_
#define KLINK_OPERATORS_OPERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/types.h"
#include "src/event/event.h"
#include "src/event/stream_queue.h"

namespace klink {

class Operator;

/// Notified when an operator has received the epoch-`epoch` checkpoint
/// barrier on every input stream (asynchronous barrier snapshotting): at
/// that instant all pre-barrier elements are reflected in the operator's
/// state and none of the post-barrier ones are, so the observer serializes
/// the operator synchronously before any post-barrier element is processed.
class BarrierObserver {
 public:
  virtual ~BarrierObserver() = default;
  virtual void OnBarrierAligned(Operator& op, uint64_t epoch) = 0;
};

/// Receives the output elements of an operator invocation. The engine wires
/// an Emitter that appends to the downstream operator's input queue.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const Event& e) = 0;

  /// Emits `n` elements in order. Batching emitters override this to
  /// append the whole run in one step; the default loops Emit.
  virtual void EmitRun(const Event* events, int64_t n) {
    for (int64_t i = 0; i < n; ++i) Emit(events[i]);
  }
};

/// Discards everything (used by sinks and tests).
class NullEmitter final : public Emitter {
 public:
  void Emit(const Event&) override {}
};

/// Collects outputs into a vector (used by tests).
class VectorEmitter final : public Emitter {
 public:
  void Emit(const Event& e) override { events.push_back(e); }
  std::vector<Event> events;
};

/// Supplies the per-element virtual timestamps of a batch drain, exactly
/// reproducing the scalar loop's accounting: each element advances consumed
/// virtual time by one fixed cost, and its timestamp is the cycle start
/// plus the consumption so far. ProcessBatch implementations must advance
/// the clock exactly once per element, in element order — Next() for an
/// element whose timestamp they need, Advance(n) for a run that does not
/// read timestamps. The identical float-addition sequence is what keeps
/// batched results byte-identical to the scalar path.
class BatchClock {
 public:
  BatchClock(TimeMicros cycle_start, double consumed_micros,
             double cost_micros)
      : cycle_start_(cycle_start),
        consumed_(consumed_micros),
        cost_(cost_micros) {}

  /// Advances one element and returns its timestamp.
  TimeMicros Next() {
    consumed_ += cost_;
    return cycle_start_ + static_cast<TimeMicros>(consumed_);
  }

  /// Advances `n` elements (same accumulation as n Next() calls).
  void Advance(int64_t n) {
    for (int64_t i = 0; i < n; ++i) consumed_ += cost_;
  }

  /// Virtual micros consumed so far (cycle-relative).
  double consumed_micros() const { return consumed_; }

 private:
  const TimeMicros cycle_start_;
  double consumed_;
  const double cost_;
};

/// Base class of all stream operators.
///
/// An operator owns one input queue per input stream, processes one element
/// at a time, and emits zero or more elements. The engine charges
/// cost_per_event() of virtual CPU time per processed element and maintains
/// the per-operator runtime statistics (selectivity, queue size, memory)
/// that the schedulers' runtime-data-acquisition module collects (Sec. 3).
///
/// Watermark protocol: the base class tracks the last watermark per input
/// stream and calls OnWatermark only when the *minimum* watermark across all
/// inputs advances — the standard SPE rule that also governs windowed joins
/// (Sec. 3.3). Subclasses emit their outputs first and the base then forwards
/// the watermark, enforcing SWM invariant (ii) of Sec. 2.2.
class Operator {
 public:
  /// `cost_micros` is the virtual CPU time to process one element;
  /// `num_inputs` >= 1.
  Operator(std::string name, double cost_micros, int num_inputs = 1);
  virtual ~Operator();

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Processes one element at virtual time `now`, emitting to `out`.
  /// The element's `stream` field selects the input it arrived on.
  void Process(const Event& e, TimeMicros now, Emitter& out);

  /// Processes `n` elements in order, advancing `clock` once per element.
  /// Semantically identical to calling Process(events[i], clock.Next(),
  /// out) for each element — the base class does exactly that — but hot
  /// operators override it to pay the dispatch, accounting, and emission
  /// overhead once per run of data elements instead of once per element.
  /// Overrides must keep outputs and counters byte-identical to the scalar
  /// loop (tests/batch_equivalence_test.cc enforces this).
  virtual void ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                            Emitter& out);

  /// ---- topology -----------------------------------------------------
  const std::string& name() const { return name_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  StreamQueue& input(int stream = 0);
  const StreamQueue& input(int stream = 0) const;

  /// ---- runtime characteristics (tuple I, Sec. 3) --------------------
  /// Configured virtual CPU time per processed element.
  double cost_per_event() const { return cost_micros_; }

  /// Output/input data-event ratio. Falls back to the configured hint until
  /// enough elements were observed.
  double selectivity() const;

  /// Configured selectivity used before measurements exist (default 1.0).
  void set_selectivity_hint(double s) { selectivity_hint_ = s; }
  double selectivity_hint() const { return selectivity_hint_; }

  int64_t processed_data_count() const { return processed_data_; }
  int64_t emitted_data_count() const { return emitted_data_; }

  /// Total queued elements across inputs.
  int64_t QueuedEvents() const;
  /// Total queued bytes across inputs.
  int64_t QueuedBytes() const;
  /// Simulated bytes of operator-held state (window panes, join buffers).
  /// Maintained incrementally: subclasses report growth/shrink through
  /// AddStateBytes, which keeps this O(1) and feeds the bound
  /// MemoryDeltaSink (see BindMemoryAccounting).
  int64_t StateBytes() const { return state_bytes_; }
  /// Queue bytes + state bytes.
  int64_t MemoryBytes() const { return QueuedBytes() + StateBytes(); }

  /// Routes this operator's memory deltas — input-queue bytes and state
  /// bytes — to `sink` (the owning Query). The sink observes deltas only;
  /// the binder seeds it with MemoryBytes() already held. Composite
  /// operators (ChainedOperator) intercept their sub-operators' deltas and
  /// re-publish them as their own state.
  void BindMemoryAccounting(MemoryDeltaSink* sink);

  /// Whether the operator can shrink in-flight volume by partial/online
  /// computation when scheduled (Klink memory management, Sec. 3.4).
  virtual bool SupportsPartialComputation() const { return false; }

  /// Whether this operator blocks the stream on window deadlines.
  virtual bool IsWindowed() const { return false; }

  /// Per-input-stream SWM progress bookkeeping, or nullptr for
  /// non-windowed operators (see window/swm_tracker.h).
  virtual const class SwmTracker* swm_tracker() const { return nullptr; }

  /// Period between window deadlines (the assigner's slide), or 0 for
  /// non-windowed operators. Together with the watermark cadence this is
  /// the SWM periodicity p^q of Sec. 3.1.
  virtual DurationMicros DeadlinePeriod() const { return 0; }

  /// Earliest un-fired window deadline, or kNoTime for non-windowed
  /// operators. For windowed operators this is the deadline the next SWM
  /// must elapse.
  virtual TimeMicros UpcomingDeadline() const { return kNoTime; }

  /// Correction elements (retractions + updates) this operator will emit at
  /// its next watermark because late arrivals dirtied retained panes.
  /// Downstream work the queues cannot see yet: the Klink policy adds it to
  /// a lane's drain cost as refire debt (allowed-lateness support,
  /// window/lateness.h). 0 for operators without retained state.
  virtual int64_t PendingRefires() const { return 0; }

  /// Last watermark timestamp seen on `stream`, or kNoTime.
  TimeMicros last_watermark(int stream = 0) const;

  /// Minimum last-watermark across inputs, or kNoTime if any input has not
  /// seen a watermark yet.
  TimeMicros MinWatermark() const;

  /// Number of watermarks forwarded downstream (epoch progress signal).
  int64_t forwarded_watermarks() const { return forwarded_watermarks_; }

  /// Minimum watermark most recently forwarded downstream, or kNoTime.
  /// Public read-only view for the invariant auditor (runtime/audit.h),
  /// which asserts it never regresses across cycles.
  TimeMicros forwarded_min_watermark_for_audit() const {
    return forwarded_min_watermark_;
  }

  /// ---- checkpointing (asynchronous barrier snapshots) ----------------
  /// Registers the observer called at barrier alignment (nullptr detaches).
  void SetBarrierObserver(BarrierObserver* observer) {
    barrier_observer_ = observer;
  }

  /// Epoch of the last checkpoint barrier seen on `stream` (0 = none yet).
  /// Read by the invariant auditor to check barrier monotonicity.
  uint64_t last_barrier_epoch(int stream = 0) const;

  /// Serializes the full operator state: base-class watermark/progress
  /// bookkeeping followed by the subclass SerializeState payload. Restore
  /// reads the same layout into a freshly constructed identical topology;
  /// subclasses re-apply state growth through AddStateBytes so the memory
  /// accounting stays consistent with the bound MemoryDeltaSink.
  void Serialize(StateWriter& w) const;
  void Restore(StateReader& r);

  /// ---- sharded execution ---------------------------------------------
  /// Operators that route their own output (exchange operators) return a
  /// non-null emitter here; the execution context then delivers outputs
  /// through it instead of the single-downstream-edge BatchEmitter. This is
  /// the seam that lets a partition exchange fan out to per-shard queues.
  virtual Emitter* inline_emitter() { return nullptr; }

  /// ---- live re-sharding ----------------------------------------------
  /// Keyed operators opt in to state re-partitioning: ExportKeyedState
  /// drains the operator's keyed state into (key, blob) entries (reporting
  /// the byte shrink through AddStateBytes), and ImportKeyedState upserts
  /// one entry (reporting growth). Blob layouts are operator-private; only
  /// same-type export/import pairs ever meet. Per-operator counters
  /// (processed/fired/dropped) stay put — they are per-shard diagnostics.
  struct KeyedStateEntry {
    uint64_t key = 0;
    std::vector<uint8_t> blob;
  };
  virtual bool HasKeyedState() const { return false; }
  virtual void ExportKeyedState(std::vector<KeyedStateEntry>* out);
  virtual void ImportKeyedState(const KeyedStateEntry& entry);

 protected:
  /// Subclass hooks. Default OnData forwards; OnLatencyMarker forwards;
  /// OnWatermark does nothing extra. The base forwards the (minimum)
  /// watermark downstream after OnWatermark returns, emitting subclass
  /// outputs *before* the watermark (SWM invariant ii, Sec. 2.2).
  /// `incoming` is the watermark element that advanced the minimum;
  /// `min_watermark` is the new minimum across input streams.
  virtual void OnData(const Event& e, TimeMicros now, Emitter& out);
  virtual void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                           TimeMicros now, Emitter& out);
  virtual void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out);

  /// Late-data corrections (window/lateness.h). Retraction/update pairs
  /// originate at windowed operators when a late arrival lands inside the
  /// allowed-lateness horizon; intermediate operators forward them
  /// unchanged by default (they are keyed elements — exchanges route and
  /// canonically merge them) and the sink folds them into results_hash.
  /// Windowed operators never receive them: the pipeline builder places at
  /// most one windowed stage per path (cascading windows are unsupported).
  virtual void OnRetraction(const Event& e, TimeMicros now, Emitter& out);
  virtual void OnUpdate(const Event& e, TimeMicros now, Emitter& out);

  /// Called for every non-late watermark arrival on any input stream,
  /// *before* the minimum-watermark check (so joins can track per-stream
  /// progress even when another stream holds the minimum back, Sec. 3.3).
  virtual void OnStreamWatermark(const Event& incoming, int stream);

  /// Checkpoint state hooks. Stateless operators (map, filter) keep the
  /// empty defaults; stateful ones write/read their window and state maps
  /// in a deterministic order (sorted keys where the container is
  /// unordered) so a restored operator is byte-identical to the original.
  virtual void SerializeState(StateWriter& w) const;
  virtual void RestoreState(StateReader& r);

  /// Emits a data element via `out` and maintains selectivity accounting.
  void EmitData(const Event& e, Emitter& out);

  /// Emits a run of data elements with one accounting update (equivalent
  /// to n EmitData calls). Used by ProcessBatch overrides.
  void EmitDataRun(const Event* events, int64_t n, Emitter& out) {
    emitted_data_ += n;
    out.EmitRun(events, n);
  }

  /// Bumps the processed-data counter exactly as Process() does for kData
  /// elements. ProcessBatch overrides that inline the data fast path
  /// (bypassing Process) must call it once per data element processed.
  void NoteDataProcessed(int64_t n) { processed_data_ += n; }

  /// Reports a change in operator-held state bytes. The only way state
  /// enters the memory accounting: StateBytes() and the query-level
  /// counter both derive from these deltas.
  void AddStateBytes(int64_t delta) {
    state_bytes_ += delta;
    if (memory_sink_ != nullptr && delta != 0) {
      memory_sink_->OnMemoryDelta(delta);
    }
  }

  /// Called from OnWatermark to control the SWM flag on the watermark the
  /// base is about to forward. Window operators set true when the watermark
  /// fired at least one pane. When not called, the incoming flag propagates.
  void SetForwardSwm(bool swm) {
    forward_swm_override_ = true;
    forward_swm_value_ = swm;
  }

  /// Called from OnWatermark to swallow the incoming watermark instead of
  /// forwarding it (used by operators that take over watermark generation,
  /// Sec. 2.2 case ii). The minimum-watermark bookkeeping still advances.
  void SuppressWatermarkForward() { suppress_forward_ = true; }

  /// Minimum watermark most recently forwarded downstream, or kNoTime.
  TimeMicros forwarded_min_watermark() const {
    return forwarded_min_watermark_;
  }

 private:
  std::string name_;
  double cost_micros_;
  std::vector<StreamQueue> inputs_;
  std::vector<TimeMicros> last_watermark_;
  std::vector<uint64_t> last_barrier_epoch_;
  BarrierObserver* barrier_observer_ = nullptr;
  TimeMicros forwarded_min_watermark_ = kNoTime;
  int64_t forwarded_watermarks_ = 0;
  bool forward_swm_override_ = false;
  bool forward_swm_value_ = false;
  bool suppress_forward_ = false;
  int64_t processed_data_ = 0;
  int64_t emitted_data_ = 0;
  double selectivity_hint_ = 1.0;
  int64_t state_bytes_ = 0;
  MemoryDeltaSink* memory_sink_ = nullptr;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_OPERATOR_H_
