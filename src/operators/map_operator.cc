#include "src/operators/map_operator.h"

#include <utility>

namespace klink {

MapOperator::MapOperator(std::string name, double cost_micros,
                         TransformFn transform)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      transform_(std::move(transform)) {}

void MapOperator::OnData(const Event& e, TimeMicros /*now*/, Emitter& out) {
  Event mapped = e;
  if (transform_) transform_(mapped);
  EmitData(mapped, out);
}

void MapOperator::ProcessBatch(const Event* events, int64_t n,
                               BatchClock& clock, Emitter& out) {
  int64_t i = 0;
  while (i < n) {
    if (!events[i].is_data()) {
      Process(events[i], clock.Next(), out);
      ++i;
      continue;
    }
    int64_t j = i + 1;
    while (j < n && events[j].is_data()) ++j;
    const int64_t run = j - i;
    clock.Advance(run);
    NoteDataProcessed(run);
    if (!transform_) {
      EmitDataRun(events + i, run, out);
    } else {
      batch_scratch_.assign(events + i, events + j);
      for (Event& e : batch_scratch_) transform_(e);
      EmitDataRun(batch_scratch_.data(), run, out);
    }
    i = j;
  }
}

}  // namespace klink
