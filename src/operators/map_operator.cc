#include "src/operators/map_operator.h"

#include <utility>

namespace klink {

MapOperator::MapOperator(std::string name, double cost_micros,
                         TransformFn transform)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      transform_(std::move(transform)) {}

void MapOperator::OnData(const Event& e, TimeMicros /*now*/, Emitter& out) {
  Event mapped = e;
  if (transform_) transform_(mapped);
  EmitData(mapped, out);
}

}  // namespace klink
