#include "src/operators/reorder_operator.h"

#include <utility>

#include "src/event/stream_queue.h"

namespace klink {

ReorderOperator::ReorderOperator(std::string name, double cost_micros)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1) {}

void ReorderOperator::OnData(const Event& e, TimeMicros /*now*/,
                             Emitter& /*out*/) {
  buffer_.push(e);
  AddStateBytes(e.payload_bytes + StreamQueue::kPerEventOverhead);
}

void ReorderOperator::OnLatencyMarker(const Event& e, TimeMicros /*now*/,
                                      Emitter& /*out*/) {
  buffer_.push(e);
  AddStateBytes(e.payload_bytes + StreamQueue::kPerEventOverhead);
}

void ReorderOperator::OnWatermark(const Event& /*incoming*/,
                                  TimeMicros min_watermark, TimeMicros /*now*/,
                                  Emitter& out) {
  // Everything at or below the watermark is complete: release in
  // event-time order; the base class forwards the watermark afterwards.
  while (!buffer_.empty() && buffer_.top().event_time <= min_watermark) {
    const Event e = buffer_.top();
    buffer_.pop();
    AddStateBytes(-(e.payload_bytes + StreamQueue::kPerEventOverhead));
    if (e.is_data()) {
      EmitData(e, out);
    } else {
      out.Emit(e);  // reordered latency marker
    }
  }
}

}  // namespace klink
