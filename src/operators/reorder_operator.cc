#include "src/operators/reorder_operator.h"

#include <utility>

#include "src/common/check.h"
#include "src/event/stream_queue.h"

namespace klink {

ReorderOperator::ReorderOperator(std::string name, double cost_micros)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1) {}

void ReorderOperator::Buffer(const Event& e) {
  buffer_.push(Entry{e, next_arrival_++});
  AddStateBytes(e.payload_bytes + StreamQueue::kPerEventOverhead);
}

void ReorderOperator::OnData(const Event& e, TimeMicros /*now*/,
                             Emitter& /*out*/) {
  Buffer(e);
}

void ReorderOperator::OnLatencyMarker(const Event& e, TimeMicros /*now*/,
                                      Emitter& /*out*/) {
  Buffer(e);
}

void ReorderOperator::OnWatermark(const Event& /*incoming*/,
                                  TimeMicros min_watermark, TimeMicros /*now*/,
                                  Emitter& out) {
  // Everything at or below the watermark is complete: release in
  // event-time order; the base class forwards the watermark afterwards.
  while (!buffer_.empty() && buffer_.top().event.event_time <= min_watermark) {
    const Event e = buffer_.top().event;
    buffer_.pop();
    AddStateBytes(-(e.payload_bytes + StreamQueue::kPerEventOverhead));
    if (e.is_data()) {
      EmitData(e, out);
    } else {
      out.Emit(e);  // reordered latency marker
    }
  }
}

void ReorderOperator::SerializeState(StateWriter& w) const {
  // Drain a copy of the heap: yields entries in exact release order
  // (event_time, arrival), which restore re-numbers 0..n-1 — the relative
  // order is all the comparator ever reads.
  auto copy = buffer_;
  w.PutU64(static_cast<uint64_t>(copy.size()));
  while (!copy.empty()) {
    const Event& e = copy.top().event;
    w.PutU8(static_cast<uint8_t>(e.kind));
    w.PutI64(e.event_time);
    w.PutI64(e.ingest_time);
    w.PutU64(e.key);
    w.PutDouble(e.value);
    w.PutU32(e.payload_bytes);
    w.PutBool(e.swm);
    copy.pop();
  }
}

void ReorderOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(buffer_.empty());
  const uint64_t n = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t i = 0; i < n; ++i) {
    Event e;
    e.kind = static_cast<EventKind>(r.GetU8());
    e.event_time = r.GetI64();
    e.ingest_time = r.GetI64();
    e.key = r.GetU64();
    e.value = r.GetDouble();
    e.payload_bytes = r.GetU32();
    e.swm = r.GetBool();
    KLINK_CHECK(r.ok());
    Buffer(e);
  }
  KLINK_CHECK(r.ok());
}

}  // namespace klink
