#include "src/operators/session_window_operator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace klink {

SessionWindowOperator::SessionWindowOperator(std::string name,
                                             double cost_micros,
                                             DurationMicros gap,
                                             AggregationKind kind,
                                             uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      gap_(gap),
      kind_(kind),
      output_payload_bytes_(output_payload_bytes) {
  KLINK_CHECK_GT(gap, 0);
  set_selectivity_hint(0.05);
}

TimeMicros SessionWindowOperator::UpcomingDeadline() const {
  if (!by_close_.empty()) return by_close_.begin()->first;
  // No open session: the earliest conceivable close is one gap past the
  // stream's current watermark position.
  const TimeMicros wm = MinWatermark();
  return (wm == kNoTime ? 0 : wm) + gap_;
}

double SessionWindowOperator::OutputValue(const Session& s) const {
  switch (kind_) {
    case AggregationKind::kCount:
      return static_cast<double>(s.count);
    case AggregationKind::kSum:
      return s.sum;
    case AggregationKind::kAverage:
      return s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
    case AggregationKind::kMax:
      return s.max;
  }
  return 0.0;
}

void SessionWindowOperator::Reindex(uint64_t key, TimeMicros old_close,
                                    TimeMicros new_close) {
  auto [lo, hi] = by_close_.equal_range(old_close);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == key) {
      by_close_.erase(it);
      break;
    }
  }
  by_close_.emplace(new_close, key);
}

void SessionWindowOperator::OnData(const Event& e, TimeMicros /*now*/,
                                   Emitter& /*out*/) {
  const TimeMicros forwarded = forwarded_min_watermark();
  if (forwarded != kNoTime && e.event_time < forwarded) {
    ++dropped_late_;
    return;
  }
  tracker_.RecordEventDelay(0, e.network_delay());
  auto [it, inserted] = sessions_.try_emplace(e.key);
  Session& s = it->second;
  if (inserted) {
    AddStateBytes(kBytesPerSession);
    s.start = e.event_time;
    s.last_event = e.event_time;
    s.count = 1;
    s.sum = e.value;
    s.max = e.value;
    by_close_.emplace(e.event_time + gap_, e.key);
    return;
  }
  // Extending an existing session; events within the gap merge into it
  // (our events arrive with event_time >= forwarded watermark, so a
  // session that is still open always absorbs them).
  const TimeMicros old_close = s.last_event + gap_;
  if (e.event_time > s.last_event) {
    s.last_event = e.event_time;
  } else {
    ++merged_sessions_;  // out-of-order extension inside the session
  }
  ++s.count;
  s.sum += e.value;
  s.max = std::max(s.max, e.value);
  const TimeMicros new_close = s.last_event + gap_;
  if (new_close != old_close) Reindex(e.key, old_close, new_close);
  s.start = std::min(s.start, e.event_time);
}

void SessionWindowOperator::OnWatermark(const Event& incoming,
                                        TimeMicros min_watermark,
                                        TimeMicros now, Emitter& out) {
  bool fired = false;
  TimeMicros last_close = kNoTime;
  while (!by_close_.empty() && by_close_.begin()->first <= min_watermark) {
    const auto it = by_close_.begin();
    const TimeMicros close = it->first;
    const uint64_t key = it->second;
    by_close_.erase(it);
    const auto sit = sessions_.find(key);
    KLINK_CHECK(sit != sessions_.end());
    Event result = MakeDataEvent(/*event_time=*/close, /*ingest_time=*/now,
                                 key, OutputValue(sit->second),
                                 output_payload_bytes_);
    sessions_.erase(sit);
    AddStateBytes(-kBytesPerSession);
    ++fired_sessions_;
    fired = true;
    last_close = close;
    EmitData(result, out);
  }
  if (fired) {
    tracker_.RecordStreamSweep(0, last_close, incoming.ingest_time);
  }
  SetForwardSwm(fired);
}

void SessionWindowOperator::ExportKeyedState(
    std::vector<KeyedStateEntry>* out) {
  // Export in by_close_ order so the target multimaps' tie order (equal
  // close times) is rebuilt deterministically.
  for (const auto& [close, key] : by_close_) {
    const auto sit = sessions_.find(key);
    KLINK_CHECK(sit != sessions_.end());
    const Session& s = sit->second;
    StateWriter w;
    w.PutI64(s.start);
    w.PutI64(s.last_event);
    w.PutI64(s.count);
    w.PutDouble(s.sum);
    w.PutDouble(s.max);
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
    (void)close;
  }
  AddStateBytes(-static_cast<int64_t>(sessions_.size()) * kBytesPerSession);
  sessions_.clear();
  by_close_.clear();
}

void SessionWindowOperator::ImportKeyedState(const KeyedStateEntry& entry) {
  StateReader r(entry.blob);
  Session s;
  s.start = r.GetI64();
  s.last_event = r.GetI64();
  s.count = r.GetI64();
  s.sum = r.GetDouble();
  s.max = r.GetDouble();
  KLINK_CHECK(r.ok() && r.AtEnd());
  const auto [it, inserted] = sessions_.emplace(entry.key, s);
  (void)it;
  KLINK_CHECK(inserted);
  by_close_.emplace(s.last_event + gap_, entry.key);
  AddStateBytes(kBytesPerSession);
}

void SessionWindowOperator::SerializeState(StateWriter& w) const {
  // Serialize in by_close_ iteration order and restore by re-inserting in
  // that order: the multimap's tie order (equal close times) determines
  // firing order, so it must survive the round trip exactly.
  w.PutU64(static_cast<uint64_t>(by_close_.size()));
  for (const auto& [close, key] : by_close_) {
    const auto sit = sessions_.find(key);
    KLINK_CHECK(sit != sessions_.end());
    const Session& s = sit->second;
    w.PutI64(close);
    w.PutU64(key);
    w.PutI64(s.start);
    w.PutI64(s.last_event);
    w.PutI64(s.count);
    w.PutDouble(s.sum);
    w.PutDouble(s.max);
  }
  w.PutI64(fired_sessions_);
  w.PutI64(dropped_late_);
  w.PutI64(merged_sessions_);
  tracker_.Serialize(w);
}

void SessionWindowOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(sessions_.empty());
  const uint64_t n = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t i = 0; i < n; ++i) {
    const TimeMicros close = r.GetI64();
    const uint64_t key = r.GetU64();
    Session s;
    s.start = r.GetI64();
    s.last_event = r.GetI64();
    s.count = r.GetI64();
    s.sum = r.GetDouble();
    s.max = r.GetDouble();
    KLINK_CHECK(r.ok());
    sessions_.emplace(key, s);
    by_close_.emplace(close, key);
    AddStateBytes(kBytesPerSession);
  }
  fired_sessions_ = r.GetI64();
  dropped_late_ = r.GetI64();
  merged_sessions_ = r.GetI64();
  tracker_.Restore(r);
  KLINK_CHECK(r.ok());
}

}  // namespace klink
