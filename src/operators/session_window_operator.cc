#include "src/operators/session_window_operator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/check.h"

namespace klink {

SessionWindowOperator::SessionWindowOperator(std::string name,
                                             double cost_micros,
                                             DurationMicros gap,
                                             AggregationKind kind,
                                             uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      gap_(gap),
      kind_(kind),
      output_payload_bytes_(output_payload_bytes) {
  KLINK_CHECK_GT(gap, 0);
  set_selectivity_hint(0.05);
}

void SessionWindowOperator::SetAllowedLateness(DurationMicros lateness) {
  KLINK_CHECK_GE(lateness, 0);
  KLINK_CHECK(retained_.empty());
  allowed_lateness_ = lateness;
}

TimeMicros SessionWindowOperator::UpcomingDeadline() const {
  if (!by_close_.empty()) return by_close_.begin()->first;
  // No open session: the earliest conceivable close is one gap past the
  // stream's current watermark position.
  const TimeMicros wm = MinWatermark();
  return (wm == kNoTime ? 0 : wm) + gap_;
}

double SessionWindowOperator::OutputValue(const Session& s) const {
  switch (kind_) {
    case AggregationKind::kCount:
      return static_cast<double>(s.count);
    case AggregationKind::kSum:
      return s.sum;
    case AggregationKind::kAverage:
      return s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
    case AggregationKind::kMax:
      return s.max;
  }
  return 0.0;
}

void SessionWindowOperator::Reindex(uint64_t key, TimeMicros old_close,
                                    TimeMicros new_close) {
  auto [lo, hi] = by_close_.equal_range(old_close);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == key) {
      by_close_.erase(it);
      break;
    }
  }
  by_close_.emplace(new_close, key);
}

bool SessionWindowOperator::FoldLateIntoRetained(const Event& e,
                                                 TimeMicros now,
                                                 Emitter& out) {
  auto it = retained_.lower_bound(
      {e.key, std::numeric_limits<TimeMicros>::min()});
  for (; it != retained_.end() && it->first.first == e.key; ++it) {
    const RetainedSession& rs = it->second;
    if (e.event_time >= rs.s.start - gap_ && e.event_time <= rs.close) break;
  }
  if (it == retained_.end() || it->first.first != e.key) return false;
  RetainedSession& rs = it->second;
  Session& s = rs.s;
  s.start = std::min(s.start, e.event_time);
  s.last_event = std::max(s.last_event, e.event_time);
  ++s.count;
  s.sum += e.value;
  s.max = std::max(s.max, e.value);
  const double corrected = OutputValue(s);
  // Correction pair at the frozen close time, the result's identity: the
  // sink's converging log removes the stale value and adds the corrected
  // one, so the fold converges to the in-order result (window/lateness.h).
  EmitData(MakeRetractionEvent(rs.close, now, e.key, rs.emitted,
                               output_payload_bytes_),
           out);
  ++late_.retractions_emitted;
  EmitData(MakeUpdateEvent(rs.close, now, e.key, corrected,
                           output_payload_bytes_),
           out);
  ++late_.updates_emitted;
  rs.emitted = corrected;
  return true;
}

void SessionWindowOperator::EvictRetained(TimeMicros min_watermark) {
  while (!retained_by_close_.empty()) {
    const auto [close, key] = *retained_by_close_.begin();
    if (WithinLatenessHorizon(close, min_watermark, allowed_lateness_)) break;
    retained_by_close_.erase(retained_by_close_.begin());
    const size_t erased = retained_.erase({key, close});
    KLINK_CHECK(erased == 1);
    AddStateBytes(-kBytesPerRetainedSession);
  }
}

void SessionWindowOperator::OnData(const Event& e, TimeMicros now,
                                   Emitter& out) {
  const TimeMicros forwarded = forwarded_min_watermark();
  const bool late = forwarded != kNoTime && e.event_time < forwarded;
  if (late) {
    if (allowed_lateness_ == 0) {
      ++dropped_late_;
      return;
    }
    // Late-accepted delays feed a separate channel so the epoch mu/chi the
    // SWM estimator consumes describe the on-time population only.
    tracker_.RecordLateEventDelay(0, e.network_delay());
  } else {
    tracker_.RecordEventDelay(0, e.network_delay());
  }
  const auto it = sessions_.find(e.key);
  if (it == sessions_.end()) {
    if (late) {
      // No open session: the event can only correct a fired one. The
      // watermark froze session structure — an orphan late event never
      // creates a new (already elapsed) session.
      if (FoldLateIntoRetained(e, now, out)) {
        ++late_.late_accepted;
      } else {
        ++late_.late_dropped_beyond_horizon;
      }
      return;
    }
    AddStateBytes(kBytesPerSession);
    Session& s = sessions_.try_emplace(e.key).first->second;
    s.start = e.event_time;
    s.last_event = e.event_time;
    s.count = 1;
    s.sum = e.value;
    s.max = e.value;
    by_close_.emplace(e.event_time + gap_, e.key);
    return;
  }
  Session& s = it->second;
  if (late && e.event_time < s.start - gap_) {
    // Predates the open session by more than a gap: in order it would have
    // been a separate, already-fired session.
    if (FoldLateIntoRetained(e, now, out)) {
      ++late_.late_accepted;
    } else {
      ++late_.late_dropped_beyond_horizon;
    }
    return;
  }
  // Extending an existing session; events within the gap merge into it
  // (our events arrive with event_time >= forwarded watermark, so a
  // session that is still open always absorbs them).
  const TimeMicros old_close = s.last_event + gap_;
  if (e.event_time > s.last_event) {
    s.last_event = e.event_time;
  } else {
    ++merged_sessions_;  // out-of-order extension inside the session
  }
  ++s.count;
  s.sum += e.value;
  s.max = std::max(s.max, e.value);
  const TimeMicros new_close = s.last_event + gap_;
  if (new_close != old_close) Reindex(e.key, old_close, new_close);
  s.start = std::min(s.start, e.event_time);
  if (late) ++late_.late_accepted;  // folded before firing: no correction
}

void SessionWindowOperator::OnWatermark(const Event& incoming,
                                        TimeMicros min_watermark,
                                        TimeMicros now, Emitter& out) {
  bool fired = false;
  TimeMicros last_close = kNoTime;
  while (!by_close_.empty() && by_close_.begin()->first <= min_watermark) {
    const auto it = by_close_.begin();
    const TimeMicros close = it->first;
    const uint64_t key = it->second;
    by_close_.erase(it);
    const auto sit = sessions_.find(key);
    KLINK_CHECK(sit != sessions_.end());
    const double value = OutputValue(sit->second);
    Event result = MakeDataEvent(/*event_time=*/close, /*ingest_time=*/now,
                                 key, value, output_payload_bytes_);
    if (allowed_lateness_ > 0 &&
        WithinLatenessHorizon(close, min_watermark, allowed_lateness_)) {
      const auto [rit, inserted] = retained_.try_emplace(
          std::make_pair(key, close),
          RetainedSession{sit->second, close, value});
      (void)rit;
      KLINK_CHECK(inserted);
      retained_by_close_.insert({close, key});
      AddStateBytes(kBytesPerRetainedSession);
    }
    sessions_.erase(sit);
    AddStateBytes(-kBytesPerSession);
    ++fired_sessions_;
    fired = true;
    last_close = close;
    EmitData(result, out);
  }
  if (allowed_lateness_ > 0) EvictRetained(min_watermark);
  if (fired) {
    tracker_.RecordStreamSweep(0, last_close, incoming.ingest_time);
  }
  SetForwardSwm(fired);
}

void SessionWindowOperator::ExportKeyedState(
    std::vector<KeyedStateEntry>* out) {
  // Export open sessions in by_close_ order so the target multimaps' tie
  // order (equal close times) is rebuilt deterministically. Each blob
  // carries the key's open session (if any) plus its retained sessions.
  std::set<uint64_t> exported;
  for (const auto& [close, key] : by_close_) {
    const auto sit = sessions_.find(key);
    KLINK_CHECK(sit != sessions_.end());
    const Session& s = sit->second;
    StateWriter w;
    w.PutU32(1);  // has open session
    w.PutI64(s.start);
    w.PutI64(s.last_event);
    w.PutI64(s.count);
    w.PutDouble(s.sum);
    w.PutDouble(s.max);
    uint32_t retained_count = 0;
    for (auto rit = retained_.lower_bound(
             {key, std::numeric_limits<TimeMicros>::min()});
         rit != retained_.end() && rit->first.first == key; ++rit) {
      ++retained_count;
    }
    w.PutU32(retained_count);
    for (auto rit = retained_.lower_bound(
             {key, std::numeric_limits<TimeMicros>::min()});
         rit != retained_.end() && rit->first.first == key; ++rit) {
      const RetainedSession& rs = rit->second;
      w.PutI64(rs.close);
      w.PutI64(rs.s.start);
      w.PutI64(rs.s.last_event);
      w.PutI64(rs.s.count);
      w.PutDouble(rs.s.sum);
      w.PutDouble(rs.s.max);
      w.PutDouble(rs.emitted);
    }
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
    exported.insert(key);
    (void)close;
  }
  // Keys with retained sessions but no open one.
  for (auto rit = retained_.begin(); rit != retained_.end();) {
    const uint64_t key = rit->first.first;
    uint32_t retained_count = 0;
    auto end = rit;
    for (; end != retained_.end() && end->first.first == key; ++end) {
      ++retained_count;
    }
    if (exported.count(key) != 0) {
      rit = end;
      continue;
    }
    StateWriter w;
    w.PutU32(0);  // no open session
    w.PutU32(retained_count);
    for (; rit != end; ++rit) {
      const RetainedSession& rs = rit->second;
      w.PutI64(rs.close);
      w.PutI64(rs.s.start);
      w.PutI64(rs.s.last_event);
      w.PutI64(rs.s.count);
      w.PutDouble(rs.s.sum);
      w.PutDouble(rs.s.max);
      w.PutDouble(rs.emitted);
    }
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
  }
  AddStateBytes(-static_cast<int64_t>(sessions_.size()) * kBytesPerSession -
                static_cast<int64_t>(retained_.size()) *
                    kBytesPerRetainedSession);
  sessions_.clear();
  by_close_.clear();
  retained_.clear();
  retained_by_close_.clear();
}

void SessionWindowOperator::ImportKeyedState(const KeyedStateEntry& entry) {
  StateReader r(entry.blob);
  const uint32_t has_open = r.GetU32();
  KLINK_CHECK(r.ok());
  if (has_open != 0) {
    KLINK_CHECK(has_open == 1);
    Session s;
    s.start = r.GetI64();
    s.last_event = r.GetI64();
    s.count = r.GetI64();
    s.sum = r.GetDouble();
    s.max = r.GetDouble();
    KLINK_CHECK(r.ok());
    const auto [it, inserted] = sessions_.emplace(entry.key, s);
    (void)it;
    KLINK_CHECK(inserted);
    by_close_.emplace(s.last_event + gap_, entry.key);
    AddStateBytes(kBytesPerSession);
  }
  const uint32_t retained_count = r.GetU32();
  KLINK_CHECK(r.ok());
  for (uint32_t i = 0; i < retained_count; ++i) {
    RetainedSession rs;
    rs.close = r.GetI64();
    rs.s.start = r.GetI64();
    rs.s.last_event = r.GetI64();
    rs.s.count = r.GetI64();
    rs.s.sum = r.GetDouble();
    rs.s.max = r.GetDouble();
    rs.emitted = r.GetDouble();
    KLINK_CHECK(r.ok());
    const auto [it, inserted] =
        retained_.emplace(std::make_pair(entry.key, rs.close), rs);
    (void)it;
    KLINK_CHECK(inserted);
    retained_by_close_.insert({rs.close, entry.key});
    AddStateBytes(kBytesPerRetainedSession);
  }
  KLINK_CHECK(r.ok() && r.AtEnd());
}

void SessionWindowOperator::SerializeState(StateWriter& w) const {
  // Serialize in by_close_ iteration order and restore by re-inserting in
  // that order: the multimap's tie order (equal close times) determines
  // firing order, so it must survive the round trip exactly.
  w.PutU64(static_cast<uint64_t>(by_close_.size()));
  for (const auto& [close, key] : by_close_) {
    const auto sit = sessions_.find(key);
    KLINK_CHECK(sit != sessions_.end());
    const Session& s = sit->second;
    w.PutI64(close);
    w.PutU64(key);
    w.PutI64(s.start);
    w.PutI64(s.last_event);
    w.PutI64(s.count);
    w.PutDouble(s.sum);
    w.PutDouble(s.max);
  }
  w.PutU64(static_cast<uint64_t>(retained_.size()));
  for (const auto& [kc, rs] : retained_) {
    w.PutU64(kc.first);
    w.PutI64(rs.close);
    w.PutI64(rs.s.start);
    w.PutI64(rs.s.last_event);
    w.PutI64(rs.s.count);
    w.PutDouble(rs.s.sum);
    w.PutDouble(rs.s.max);
    w.PutDouble(rs.emitted);
  }
  late_.Serialize(w);
  w.PutI64(fired_sessions_);
  w.PutI64(dropped_late_);
  w.PutI64(merged_sessions_);
  tracker_.Serialize(w);
}

void SessionWindowOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(sessions_.empty());
  KLINK_CHECK(retained_.empty());
  const uint64_t n = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t i = 0; i < n; ++i) {
    const TimeMicros close = r.GetI64();
    const uint64_t key = r.GetU64();
    Session s;
    s.start = r.GetI64();
    s.last_event = r.GetI64();
    s.count = r.GetI64();
    s.sum = r.GetDouble();
    s.max = r.GetDouble();
    KLINK_CHECK(r.ok());
    sessions_.emplace(key, s);
    by_close_.emplace(close, key);
    AddStateBytes(kBytesPerSession);
  }
  const uint64_t rn = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t i = 0; i < rn; ++i) {
    const uint64_t key = r.GetU64();
    RetainedSession rs;
    rs.close = r.GetI64();
    rs.s.start = r.GetI64();
    rs.s.last_event = r.GetI64();
    rs.s.count = r.GetI64();
    rs.s.sum = r.GetDouble();
    rs.s.max = r.GetDouble();
    rs.emitted = r.GetDouble();
    KLINK_CHECK(r.ok());
    const auto [it, inserted] =
        retained_.emplace(std::make_pair(key, rs.close), rs);
    (void)it;
    KLINK_CHECK(inserted);
    retained_by_close_.insert({rs.close, key});
    AddStateBytes(kBytesPerRetainedSession);
  }
  late_.Restore(r);
  fired_sessions_ = r.GetI64();
  dropped_late_ = r.GetI64();
  merged_sessions_ = r.GetI64();
  tracker_.Restore(r);
  KLINK_CHECK(r.ok());
}

}  // namespace klink
