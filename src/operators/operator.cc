#include "src/operators/operator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace klink {

Operator::Operator(std::string name, double cost_micros, int num_inputs)
    : name_(std::move(name)), cost_micros_(cost_micros) {
  KLINK_CHECK_GE(num_inputs, 1);
  KLINK_CHECK_GE(cost_micros, 0.0);
  inputs_.resize(static_cast<size_t>(num_inputs));
  last_watermark_.assign(static_cast<size_t>(num_inputs), kNoTime);
  last_barrier_epoch_.assign(static_cast<size_t>(num_inputs), 0);
}

Operator::~Operator() = default;

StreamQueue& Operator::input(int stream) {
  KLINK_CHECK(stream >= 0 && stream < num_inputs());
  return inputs_[static_cast<size_t>(stream)];
}

const StreamQueue& Operator::input(int stream) const {
  KLINK_CHECK(stream >= 0 && stream < num_inputs());
  return inputs_[static_cast<size_t>(stream)];
}

double Operator::selectivity() const {
  // Wait for a minimally meaningful sample before trusting measurements.
  constexpr int64_t kMinSample = 32;
  if (processed_data_ < kMinSample) return selectivity_hint_;
  return static_cast<double>(emitted_data_) /
         static_cast<double>(processed_data_);
}

int64_t Operator::QueuedEvents() const {
  int64_t total = 0;
  for (const StreamQueue& q : inputs_) total += q.size();
  return total;
}

int64_t Operator::QueuedBytes() const {
  int64_t total = 0;
  for (const StreamQueue& q : inputs_) total += q.bytes();
  return total;
}

TimeMicros Operator::last_watermark(int stream) const {
  KLINK_CHECK(stream >= 0 && stream < num_inputs());
  return last_watermark_[static_cast<size_t>(stream)];
}

TimeMicros Operator::MinWatermark() const {
  TimeMicros min_wm = last_watermark_[0];
  for (TimeMicros wm : last_watermark_) {
    if (wm == kNoTime) return kNoTime;
    min_wm = std::min(min_wm, wm);
  }
  return min_wm;
}

void Operator::Process(const Event& e, TimeMicros now, Emitter& out) {
  switch (e.kind) {
    case EventKind::kData:
      ++processed_data_;
      OnData(e, now, out);
      return;
    case EventKind::kLatencyMarker:
      OnLatencyMarker(e, now, out);
      return;
    case EventKind::kRetraction:
      ++processed_data_;
      OnRetraction(e, now, out);
      return;
    case EventKind::kUpdate:
      ++processed_data_;
      OnUpdate(e, now, out);
      return;
    case EventKind::kWatermark: {
      const int stream = e.stream;
      KLINK_CHECK(stream >= 0 && stream < num_inputs());
      auto& slot = last_watermark_[static_cast<size_t>(stream)];
      // SPEs drop out-of-order (late) watermarks (Sec. 2.2).
      if (slot != kNoTime && e.event_time <= slot) return;
      slot = e.event_time;
      OnStreamWatermark(e, stream);
      const TimeMicros min_wm = MinWatermark();
      // Forward only when the minimum across inputs advances (Sec. 3.3).
      if (min_wm == kNoTime || min_wm <= forwarded_min_watermark_) return;
      forward_swm_override_ = false;
      suppress_forward_ = false;
      OnWatermark(e, min_wm, now, out);
      forwarded_min_watermark_ = min_wm;
      if (suppress_forward_) return;
      ++forwarded_watermarks_;
      Event fwd = MakeWatermark(min_wm, e.ingest_time);
      fwd.swm = forward_swm_override_ ? forward_swm_value_ : e.swm;
      out.Emit(fwd);
      return;
    }
    case EventKind::kCheckpointBarrier: {
      const int stream = e.stream;
      KLINK_CHECK(stream >= 0 && stream < num_inputs());
      const uint64_t epoch = e.barrier_epoch();
      auto& slot = last_barrier_epoch_[static_cast<size_t>(stream)];
      // Barrier monotonicity: the coordinator injects epochs in order and
      // queues are FIFO, so a stale or repeated barrier is a corruption.
      KLINK_CHECK_GT(epoch, slot);
      slot = epoch;
      uint64_t min_epoch = last_barrier_epoch_[0];
      for (const uint64_t be : last_barrier_epoch_) {
        min_epoch = std::min(min_epoch, be);
      }
      // Aligned exactly when the last input reaches this epoch: all
      // pre-barrier elements are in state, no post-barrier one is.
      if (min_epoch != epoch) return;
      if (barrier_observer_ != nullptr) {
        barrier_observer_->OnBarrierAligned(*this, epoch);
      }
      out.Emit(MakeCheckpointBarrier(epoch, e.ingest_time));
      return;
    }
  }
}

void Operator::ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                            Emitter& out) {
  for (int64_t i = 0; i < n; ++i) Process(events[i], clock.Next(), out);
}

void Operator::BindMemoryAccounting(MemoryDeltaSink* sink) {
  memory_sink_ = sink;
  for (StreamQueue& q : inputs_) q.BindAccounting(sink);
}

void Operator::OnData(const Event& e, TimeMicros /*now*/, Emitter& out) {
  EmitData(e, out);
}

void Operator::EmitData(const Event& e, Emitter& out) {
  ++emitted_data_;
  out.Emit(e);
}

void Operator::OnWatermark(const Event& /*incoming*/,
                           TimeMicros /*min_watermark*/, TimeMicros /*now*/,
                           Emitter& /*out*/) {}

void Operator::OnLatencyMarker(const Event& e, TimeMicros /*now*/,
                               Emitter& out) {
  out.Emit(e);
}

void Operator::OnRetraction(const Event& e, TimeMicros /*now*/, Emitter& out) {
  EmitData(e, out);
}

void Operator::OnUpdate(const Event& e, TimeMicros /*now*/, Emitter& out) {
  EmitData(e, out);
}

void Operator::OnStreamWatermark(const Event& /*incoming*/, int /*stream*/) {}

void Operator::SerializeState(StateWriter& /*w*/) const {}

void Operator::RestoreState(StateReader& /*r*/) {}

void Operator::ExportKeyedState(std::vector<KeyedStateEntry>* /*out*/) {
  KLINK_CHECK(false);  // only keyed operators participate in re-sharding
}

void Operator::ImportKeyedState(const KeyedStateEntry& /*entry*/) {
  KLINK_CHECK(false);
}

uint64_t Operator::last_barrier_epoch(int stream) const {
  KLINK_CHECK(stream >= 0 && stream < num_inputs());
  return last_barrier_epoch_[static_cast<size_t>(stream)];
}

void Operator::Serialize(StateWriter& w) const {
  w.PutU32(static_cast<uint32_t>(num_inputs()));
  for (const TimeMicros wm : last_watermark_) w.PutI64(wm);
  w.PutI64(forwarded_min_watermark_);
  w.PutI64(forwarded_watermarks_);
  w.PutI64(processed_data_);
  w.PutI64(emitted_data_);
  SerializeState(w);
}

void Operator::Restore(StateReader& r) {
  const uint32_t n = r.GetU32();
  KLINK_CHECK(r.ok());
  KLINK_CHECK_EQ(static_cast<int>(n), num_inputs());
  for (TimeMicros& wm : last_watermark_) wm = r.GetI64();
  forwarded_min_watermark_ = r.GetI64();
  forwarded_watermarks_ = r.GetI64();
  processed_data_ = r.GetI64();
  emitted_data_ = r.GetI64();
  KLINK_CHECK(r.ok());
  RestoreState(r);
}

}  // namespace klink
