#include "src/operators/sink_operator.h"

#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace klink {
namespace {

uint64_t ValueBits(const Event& e) {
  uint64_t value_bits;
  std::memcpy(&value_bits, &e.value, sizeof(value_bits));
  return value_bits;
}

}  // namespace

SinkOperator::SinkOperator(std::string name, double cost_micros)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1) {}

void SinkOperator::SetAllowedLateness(DurationMicros lateness) {
  KLINK_CHECK_GE(lateness, 0);
  KLINK_CHECK_EQ(results_received_, 0);
  allowed_lateness_ = lateness;
}

void SinkOperator::ResetStats() {
  swm_latency_.Reset();
  marker_latency_.Reset();
  results_received_ = 0;
  retractions_received_ = 0;
  unmatched_retractions_ = 0;
  results_hash_ = kHashBasis;
  log_.Clear();
  last_result_time_ = kNoTime;
}

uint64_t SinkOperator::results_hash() const {
  return allowed_lateness_ > 0 ? log_.FoldedHash() : results_hash_;
}

void SinkOperator::Absorb(const Event& e) {
  ++results_received_;
  const uint64_t value_bits = ValueBits(e);
  if (allowed_lateness_ > 0) {
    log_.Append(e.event_time, e.key, value_bits);
  } else {
    results_hash_ =
        ConvergingResultLog::Fnv1a(results_hash_,
                                   static_cast<uint64_t>(e.event_time));
    results_hash_ = ConvergingResultLog::Fnv1a(results_hash_, e.key);
    results_hash_ = ConvergingResultLog::Fnv1a(results_hash_, value_bits);
  }
  last_result_time_ = e.event_time;
}

void SinkOperator::OnData(const Event& e, TimeMicros /*now*/,
                          Emitter& /*out*/) {
  Absorb(e);
}

void SinkOperator::OnRetraction(const Event& e, TimeMicros /*now*/,
                                Emitter& /*out*/) {
  ++retractions_received_;
  // A retraction outside a lateness run means a misconfigured pipeline
  // (upstream fires speculatively but the sink folds in arrival order and
  // can never converge) — surface that instead of corrupting the hash.
  KLINK_CHECK_GT(allowed_lateness_, 0);
  if (log_.Retract(e.event_time, e.key, ValueBits(e))) {
    --results_received_;
  } else {
    // The speculative result this corrects predates the warm-up reset.
    ++unmatched_retractions_;
  }
}

void SinkOperator::OnUpdate(const Event& e, TimeMicros /*now*/,
                            Emitter& /*out*/) {
  KLINK_CHECK_GT(allowed_lateness_, 0);
  Absorb(e);
}

void SinkOperator::OnWatermark(const Event& incoming,
                               TimeMicros min_watermark, TimeMicros now,
                               Emitter& /*out*/) {
  if (allowed_lateness_ > 0 && min_watermark != kNoTime) {
    log_.FinalizeUpTo(min_watermark, allowed_lateness_);
  }
  if (incoming.swm) swm_latency_.Add(now - incoming.event_time);
}

void SinkOperator::OnLatencyMarker(const Event& e, TimeMicros now,
                                   Emitter& /*out*/) {
  marker_latency_.Add(now - e.event_time);
}

void SinkOperator::SerializeState(StateWriter& w) const {
  w.PutI64(results_received_);
  w.PutU64(results_hash_);
  w.PutI64(last_result_time_);
  w.PutI64(retractions_received_);
  w.PutI64(unmatched_retractions_);
  log_.Serialize(w);
  swm_latency_.Serialize(w);
  marker_latency_.Serialize(w);
}

void SinkOperator::RestoreState(StateReader& r) {
  results_received_ = r.GetI64();
  results_hash_ = r.GetU64();
  last_result_time_ = r.GetI64();
  retractions_received_ = r.GetI64();
  unmatched_retractions_ = r.GetI64();
  log_.Restore(r);
  swm_latency_.Restore(r);
  marker_latency_.Restore(r);
}

}  // namespace klink
