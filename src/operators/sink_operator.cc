#include "src/operators/sink_operator.h"

#include <cstring>
#include <utility>

namespace klink {
namespace {

uint64_t Fnv1a(uint64_t hash, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

SinkOperator::SinkOperator(std::string name, double cost_micros)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1) {}

void SinkOperator::ResetStats() {
  swm_latency_.Reset();
  marker_latency_.Reset();
  results_received_ = 0;
  results_hash_ = kHashBasis;
  last_result_time_ = kNoTime;
}

void SinkOperator::OnData(const Event& e, TimeMicros /*now*/,
                          Emitter& /*out*/) {
  ++results_received_;
  uint64_t value_bits;
  std::memcpy(&value_bits, &e.value, sizeof(value_bits));
  results_hash_ = Fnv1a(results_hash_, static_cast<uint64_t>(e.event_time));
  results_hash_ = Fnv1a(results_hash_, e.key);
  results_hash_ = Fnv1a(results_hash_, value_bits);
  last_result_time_ = e.event_time;
}

void SinkOperator::OnWatermark(const Event& incoming,
                               TimeMicros /*min_watermark*/, TimeMicros now,
                               Emitter& /*out*/) {
  if (incoming.swm) swm_latency_.Add(now - incoming.event_time);
}

void SinkOperator::OnLatencyMarker(const Event& e, TimeMicros now,
                                   Emitter& /*out*/) {
  marker_latency_.Add(now - e.event_time);
}

void SinkOperator::SerializeState(StateWriter& w) const {
  w.PutI64(results_received_);
  w.PutU64(results_hash_);
  w.PutI64(last_result_time_);
  swm_latency_.Serialize(w);
  marker_latency_.Serialize(w);
}

void SinkOperator::RestoreState(StateReader& r) {
  results_received_ = r.GetI64();
  results_hash_ = r.GetU64();
  last_result_time_ = r.GetI64();
  swm_latency_.Restore(r);
  marker_latency_.Restore(r);
}

}  // namespace klink
