#include "src/operators/sink_operator.h"

#include <utility>

namespace klink {

SinkOperator::SinkOperator(std::string name, double cost_micros)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1) {}

void SinkOperator::ResetStats() {
  swm_latency_.Reset();
  marker_latency_.Reset();
  results_received_ = 0;
  last_result_time_ = kNoTime;
}

void SinkOperator::OnData(const Event& e, TimeMicros /*now*/,
                          Emitter& /*out*/) {
  ++results_received_;
  last_result_time_ = e.event_time;
}

void SinkOperator::OnWatermark(const Event& incoming,
                               TimeMicros /*min_watermark*/, TimeMicros now,
                               Emitter& /*out*/) {
  if (incoming.swm) swm_latency_.Add(now - incoming.event_time);
}

void SinkOperator::OnLatencyMarker(const Event& e, TimeMicros now,
                                   Emitter& /*out*/) {
  marker_latency_.Add(now - e.event_time);
}

}  // namespace klink
