#include "src/operators/watermark_generator_operator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace klink {

WatermarkGeneratorOperator::WatermarkGeneratorOperator(std::string name,
                                                       double cost_micros,
                                                       DurationMicros period,
                                                       DurationMicros lag)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      period_(period),
      lag_(lag) {
  KLINK_CHECK_GT(period, 0);
  KLINK_CHECK_GE(lag, 0);
}

void WatermarkGeneratorOperator::MaybeEmit(TimeMicros now, Emitter& out) {
  if (max_event_time_ == kNoTime || now < next_emit_time_) return;
  const TimeMicros timestamp = max_event_time_ - lag_;
  next_emit_time_ = now + period_;
  // Watermarks must be monotone; skip if progress has not advanced.
  if (last_emitted_timestamp_ != kNoTime &&
      timestamp <= last_emitted_timestamp_) {
    return;
  }
  last_emitted_timestamp_ = timestamp;
  ++emitted_watermarks_;
  out.Emit(MakeWatermark(timestamp, /*ingest_time=*/now));
}

void WatermarkGeneratorOperator::OnData(const Event& e, TimeMicros now,
                                        Emitter& out) {
  max_event_time_ = max_event_time_ == kNoTime
                        ? e.event_time
                        : std::max(max_event_time_, e.event_time);
  EmitData(e, out);
  MaybeEmit(now, out);
}

void WatermarkGeneratorOperator::OnWatermark(const Event& /*incoming*/,
                                             TimeMicros /*min_watermark*/,
                                             TimeMicros now, Emitter& out) {
  // This operator owns watermark generation downstream: upstream
  // watermarks are swallowed, though they still count as an emission
  // opportunity (progress may have accrued without data).
  SuppressWatermarkForward();
  MaybeEmit(now, out);
}

}  // namespace klink
