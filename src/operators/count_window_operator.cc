#include "src/operators/count_window_operator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace klink {

CountWindowOperator::CountWindowOperator(std::string name, double cost_micros,
                                         int64_t size, AggregationKind kind,
                                         uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      size_(size),
      kind_(kind),
      output_payload_bytes_(output_payload_bytes) {
  KLINK_CHECK_GE(size, 1);
  set_selectivity_hint(1.0 / static_cast<double>(size));
}

double CountWindowOperator::OutputValue(const Aggregate& agg) const {
  switch (kind_) {
    case AggregationKind::kCount:
      return static_cast<double>(agg.count);
    case AggregationKind::kSum:
      return agg.sum;
    case AggregationKind::kAverage:
      return agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(agg.count);
    case AggregationKind::kMax:
      return agg.max;
  }
  return 0.0;
}

void CountWindowOperator::OnData(const Event& e, TimeMicros /*now*/,
                                 Emitter& out) {
  auto [it, inserted] = state_.try_emplace(e.key);
  if (inserted) AddStateBytes(kBytesPerKeyState);
  Aggregate& agg = it->second;
  ++agg.count;
  agg.sum += e.value;
  agg.max = agg.count == 1 ? e.value : std::max(agg.max, e.value);
  if (agg.count < size_) return;
  // The deadline event e_m arrived: emit and reset this key's window.
  Event result = MakeDataEvent(e.event_time, e.ingest_time, e.key,
                               OutputValue(agg), output_payload_bytes_);
  state_.erase(it);
  AddStateBytes(-kBytesPerKeyState);
  ++fired_windows_;
  EmitData(result, out);
}

void CountWindowOperator::ExportKeyedState(std::vector<KeyedStateEntry>* out) {
  std::vector<uint64_t> keys;
  keys.reserve(state_.size());
  for (const auto& [key, agg] : state_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const uint64_t key : keys) {
    const Aggregate& agg = state_.find(key)->second;
    StateWriter w;
    w.PutI64(agg.count);
    w.PutDouble(agg.sum);
    w.PutDouble(agg.max);
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
  }
  AddStateBytes(-static_cast<int64_t>(state_.size()) * kBytesPerKeyState);
  state_.clear();
}

void CountWindowOperator::ImportKeyedState(const KeyedStateEntry& entry) {
  StateReader r(entry.blob);
  Aggregate agg;
  agg.count = r.GetI64();
  agg.sum = r.GetDouble();
  agg.max = r.GetDouble();
  KLINK_CHECK(r.ok() && r.AtEnd());
  const auto [it, inserted] = state_.emplace(entry.key, agg);
  (void)it;
  KLINK_CHECK(inserted);
  AddStateBytes(kBytesPerKeyState);
}

void CountWindowOperator::SerializeState(StateWriter& w) const {
  w.PutU64(static_cast<uint64_t>(state_.size()));
  std::vector<uint64_t> keys;
  keys.reserve(state_.size());
  for (const auto& [key, agg] : state_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const uint64_t key : keys) {
    const Aggregate& agg = state_.find(key)->second;
    w.PutU64(key);
    w.PutI64(agg.count);
    w.PutDouble(agg.sum);
    w.PutDouble(agg.max);
  }
  w.PutI64(fired_windows_);
}

void CountWindowOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(state_.empty());
  const uint64_t n = r.GetU64();
  KLINK_CHECK(r.ok());
  state_.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t key = r.GetU64();
    Aggregate agg;
    agg.count = r.GetI64();
    agg.sum = r.GetDouble();
    agg.max = r.GetDouble();
    state_.emplace(key, agg);
    AddStateBytes(kBytesPerKeyState);
  }
  fired_windows_ = r.GetI64();
  KLINK_CHECK(r.ok());
}

}  // namespace klink
