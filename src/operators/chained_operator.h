#ifndef KLINK_OPERATORS_CHAINED_OPERATOR_H_
#define KLINK_OPERATORS_CHAINED_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/operators/operator.h"

namespace klink {

/// Operator chaining, as Flink's Core layer does when it transforms Tasks
/// into "a chain of operators" (paper Sec. 5): consecutive unary operators
/// are fused into one schedulable unit that processes each element through
/// the whole chain synchronously. Chaining removes the intermediate
/// queues — their memory and their per-hop scheduling latency — at the
/// cost of coarser scheduling granularity.
///
/// The composite exposes aggregated runtime characteristics: its
/// per-event cost is the selectivity-weighted cost of pushing one element
/// through the chain, its state is the sum of sub-operator state, and its
/// windowed/SWM surface is that of the chain's (single permitted) windowed
/// sub-operator.
class ChainedOperator final : public Operator, private MemoryDeltaSink {
 public:
  /// Requires at least one sub-operator; every sub-operator must be unary.
  /// At most one sub-operator may be windowed (Flink breaks chains at
  /// shuffles; we break them at multi-input operators and allow a single
  /// window inside).
  ChainedOperator(std::string name, std::vector<std::unique_ptr<Operator>> ops);

  int num_chained() const { return static_cast<int>(ops_.size()); }
  const Operator& chained(int i) const;

  /// ---- Operator overrides --------------------------------------------
  bool SupportsPartialComputation() const override;
  bool IsWindowed() const override { return windowed_ != nullptr; }
  TimeMicros UpcomingDeadline() const override;
  DurationMicros DeadlinePeriod() const override;
  const SwmTracker* swm_tracker() const override;

  /// Batch fast path: pushes each element through the chain without the
  /// composite's per-element dispatch. Sub-operators still run scalar —
  /// the chain is the unit of scheduling, not of batching.
  void ProcessBatch(const Event* events, int64_t n, BatchClock& clock,
                    Emitter& out) override;

  /// Selectivity-weighted per-event cost of the whole chain, from the
  /// sub-operators' declared hints (used to construct the composite).
  static double ChainCost(const std::vector<std::unique_ptr<Operator>>& ops);

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out) override;
  /// Corrections traverse the chain like data so sub-operators past the
  /// window see them (the window itself is what emits them).
  void OnRetraction(const Event& e, TimeMicros now, Emitter& out) override;
  void OnUpdate(const Event& e, TimeMicros now, Emitter& out) override;
  /// Barriers align at the composite (sub-operators never see them), so
  /// the composite's checkpoint payload is each sub-operator's full state
  /// in chain order.
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  /// Sub-operator memory deltas (their state; their queues stay empty)
  /// surface as the composite's own state, so the chain's StateBytes and
  /// the query-level counter stay exact.
  void OnMemoryDelta(int64_t delta_bytes) override { AddStateBytes(delta_bytes); }

  /// Pushes one element through sub-operators [index..end), emitting final
  /// outputs through `out`.
  class CascadeEmitter;
  void RunThrough(const Event& e, size_t index, TimeMicros now, Emitter& out);

  std::vector<std::unique_ptr<Operator>> ops_;
  Operator* windowed_ = nullptr;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_CHAINED_OPERATOR_H_
