#include "src/operators/source_operator.h"

#include <utility>

namespace klink {

SourceOperator::SourceOperator(std::string name, double cost_micros)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1) {}

void SourceOperator::OnData(const Event& e, TimeMicros /*now*/, Emitter& out) {
  last_network_delay_ = e.network_delay();
  EmitData(e, out);
}

}  // namespace klink
