#ifndef KLINK_OPERATORS_WATERMARK_GENERATOR_OPERATOR_H_
#define KLINK_OPERATORS_WATERMARK_GENERATOR_OPERATOR_H_

#include <string>

#include "src/operators/operator.h"

namespace klink {

/// Periodic in-pipeline watermark generation (paper Sec. 2.2 case (ii):
/// watermarks injected "by a specific operator that periodically emits
/// them"). Data events pass through; every `period` of processing time the
/// operator emits a watermark with timestamp (max observed event-time -
/// lag), the standard bounded-lateness heuristic. Incoming watermarks are
/// swallowed — this operator takes over progress signalling.
class WatermarkGeneratorOperator final : public Operator {
 public:
  /// Requires period > 0 and lag >= 0.
  WatermarkGeneratorOperator(std::string name, double cost_micros,
                             DurationMicros period, DurationMicros lag);

  int64_t emitted_watermarks() const { return emitted_watermarks_; }
  TimeMicros max_event_time() const { return max_event_time_; }

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;

 private:
  void MaybeEmit(TimeMicros now, Emitter& out);

  DurationMicros period_;
  DurationMicros lag_;
  TimeMicros max_event_time_ = kNoTime;
  TimeMicros next_emit_time_ = 0;
  TimeMicros last_emitted_timestamp_ = kNoTime;
  int64_t emitted_watermarks_ = 0;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_WATERMARK_GENERATOR_OPERATOR_H_
