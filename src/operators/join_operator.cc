#include "src/operators/join_operator.h"

#include <algorithm>

#include "src/common/check.h"

namespace klink {

WindowJoinOperator::WindowJoinOperator(std::string name, double cost_micros,
                                       std::unique_ptr<WindowAssigner> assigner,
                                       int num_inputs,
                                       uint32_t output_payload_bytes)
    : Operator(std::move(name), cost_micros, num_inputs),
      assigner_(std::move(assigner)),
      output_payload_bytes_(output_payload_bytes),
      tracker_(num_inputs),
      next_stream_deadline_(static_cast<size_t>(num_inputs), kNoTime) {
  KLINK_CHECK(assigner_ != nullptr);
  KLINK_CHECK_GE(num_inputs, 2);
  set_selectivity_hint(0.05);
}

TimeMicros WindowJoinOperator::UpcomingDeadline() const {
  if (!panes_.empty()) return panes_.begin()->first.first;
  const TimeMicros wm = MinWatermark();
  return assigner_->NextDeadlineAfter(wm == kNoTime ? 0 : wm);
}

void WindowJoinOperator::OnData(const Event& e, TimeMicros /*now*/,
                                Emitter& /*out*/) {
  const TimeMicros forwarded = forwarded_min_watermark();
  if (forwarded != kNoTime && e.event_time < forwarded) {
    ++dropped_late_;
    return;
  }
  KLINK_CHECK(e.stream >= 0 && e.stream < num_inputs());
  tracker_.RecordEventDelay(e.stream, e.network_delay());
  scratch_windows_.clear();
  assigner_->AssignWindows(e.event_time, &scratch_windows_);
  for (const WindowSpan& w : scratch_windows_) {
    if (forwarded != kNoTime && w.end <= forwarded) continue;
    Pane& pane = panes_[{w.end, w.start}];
    if (pane.per_stream.empty()) {
      pane.per_stream.resize(static_cast<size_t>(num_inputs()));
      AddStateBytes(kBytesPerPane);
    }
    auto [it, inserted] =
        pane.per_stream[static_cast<size_t>(e.stream)].try_emplace(e.key);
    if (inserted) {
      ++total_key_states_;
      AddStateBytes(kBytesPerKeyState);
    }
    Aggregate& agg = it->second;
    ++agg.count;
    agg.sum += e.value;
  }
}

void WindowJoinOperator::FirePane(const PaneKey& pane_key, Pane& pane,
                                  TimeMicros now, Emitter& out) {
  const TimeMicros end = pane_key.first;
  // Iterate the smallest stream map and probe the others: equi-join
  // emitting one result per key present in every stream.
  size_t smallest = 0;
  for (size_t s = 1; s < pane.per_stream.size(); ++s) {
    if (pane.per_stream[s].size() < pane.per_stream[smallest].size()) {
      smallest = s;
    }
  }
  // Probe in sorted-key order: a deterministic order that survives
  // checkpoint/restore, unlike the hash map's iteration order.
  scratch_keys_.clear();
  for (const auto& [key, agg] : pane.per_stream[smallest]) {
    scratch_keys_.push_back(key);
  }
  std::sort(scratch_keys_.begin(), scratch_keys_.end());
  for (const uint64_t key : scratch_keys_) {
    const Aggregate& agg = pane.per_stream[smallest].find(key)->second;
    double sum = agg.sum;
    int64_t count = agg.count;
    bool in_all = true;
    for (size_t s = 0; s < pane.per_stream.size(); ++s) {
      if (s == smallest) continue;
      const auto it = pane.per_stream[s].find(key);
      if (it == pane.per_stream[s].end()) {
        in_all = false;
        break;
      }
      sum += it->second.sum;
      count += it->second.count;
    }
    if (!in_all) continue;
    Event result = MakeDataEvent(/*event_time=*/end, /*ingest_time=*/now, key,
                                 /*value=*/sum, output_payload_bytes_);
    // Join cardinality is carried in `value`; count joins for diagnostics.
    ++emitted_joins_;
    (void)count;
    EmitData(result, out);
  }
  int64_t keys = 0;
  for (const auto& m : pane.per_stream) {
    keys += static_cast<int64_t>(m.size());
  }
  total_key_states_ -= keys;
  AddStateBytes(-(kBytesPerPane + keys * kBytesPerKeyState));
  ++fired_panes_;
}

void WindowJoinOperator::OnStreamWatermark(const Event& incoming, int stream) {
  // Track per-stream deadline sweeps: stream `s` has "done its part" for a
  // window once its own watermark elapses the deadline, even if the join
  // stays blocked on other streams (Sec. 3.3).
  auto& next = next_stream_deadline_[static_cast<size_t>(stream)];
  if (next == kNoTime) next = assigner_->NextDeadlineAfter(0);
  if (incoming.event_time < next) return;
  const TimeMicros last_elapsed =
      assigner_->NextDeadlineAfter(incoming.event_time) - assigner_->slide();
  tracker_.RecordStreamSweep(stream, std::max(next, last_elapsed),
                             incoming.ingest_time);
  next = assigner_->NextDeadlineAfter(incoming.event_time);
}

void WindowJoinOperator::OnWatermark(const Event& /*incoming*/,
                                     TimeMicros min_watermark, TimeMicros now,
                                     Emitter& out) {
  const TimeMicros prev = forwarded_min_watermark();
  const TimeMicros first_deadline =
      assigner_->NextDeadlineAfter(prev == kNoTime ? 0 : prev);
  const bool sweeps = min_watermark >= first_deadline;
  if (!sweeps) {
    SetForwardSwm(false);
    return;
  }
  while (!panes_.empty() && panes_.begin()->first.first <= min_watermark) {
    auto it = panes_.begin();
    FirePane(it->first, it->second, now, out);
    panes_.erase(it);
  }
  SetForwardSwm(true);
}

void WindowJoinOperator::ExportKeyedState(std::vector<KeyedStateEntry>* out) {
  std::map<uint64_t, StateWriter> blobs;
  int64_t keys = 0;
  for (const auto& [pane_key, pane] : panes_) {
    for (size_t s = 0; s < pane.per_stream.size(); ++s) {
      for (const auto& [key, agg] : pane.per_stream[s]) {
        StateWriter& w = blobs[key];
        w.PutI64(pane_key.first);   // end
        w.PutI64(pane_key.second);  // start
        w.PutU32(static_cast<uint32_t>(s));
        w.PutI64(agg.count);
        w.PutDouble(agg.sum);
        ++keys;
      }
    }
  }
  AddStateBytes(-(static_cast<int64_t>(panes_.size()) * kBytesPerPane +
                  keys * kBytesPerKeyState));
  total_key_states_ = 0;
  panes_.clear();
  for (auto& [key, w] : blobs) {
    out->push_back(KeyedStateEntry{key, w.TakeBytes()});
  }
}

void WindowJoinOperator::ImportKeyedState(const KeyedStateEntry& entry) {
  StateReader r(entry.blob);
  while (r.remaining() > 0) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    const uint32_t stream = r.GetU32();
    Aggregate agg;
    agg.count = r.GetI64();
    agg.sum = r.GetDouble();
    KLINK_CHECK(r.ok());
    KLINK_CHECK_GT(static_cast<uint32_t>(num_inputs()), stream);
    Pane& pane = panes_[{end, start}];
    if (pane.per_stream.empty()) {
      pane.per_stream.resize(static_cast<size_t>(num_inputs()));
      AddStateBytes(kBytesPerPane);
    }
    const auto [it, inserted] =
        pane.per_stream[static_cast<size_t>(stream)].emplace(entry.key, agg);
    (void)it;
    KLINK_CHECK(inserted);
    ++total_key_states_;
    AddStateBytes(kBytesPerKeyState);
  }
}

void WindowJoinOperator::SerializeState(StateWriter& w) const {
  w.PutU64(static_cast<uint64_t>(panes_.size()));
  for (const auto& [pane_key, pane] : panes_) {
    w.PutI64(pane_key.first);   // end
    w.PutI64(pane_key.second);  // start
    w.PutU32(static_cast<uint32_t>(pane.per_stream.size()));
    for (const auto& stream_map : pane.per_stream) {
      w.PutU64(static_cast<uint64_t>(stream_map.size()));
      std::vector<uint64_t> keys;
      keys.reserve(stream_map.size());
      for (const auto& [key, agg] : stream_map) keys.push_back(key);
      std::sort(keys.begin(), keys.end());
      for (const uint64_t key : keys) {
        const Aggregate& agg = stream_map.find(key)->second;
        w.PutU64(key);
        w.PutI64(agg.count);
        w.PutDouble(agg.sum);
      }
    }
  }
  for (const TimeMicros d : next_stream_deadline_) w.PutI64(d);
  w.PutI64(fired_panes_);
  w.PutI64(emitted_joins_);
  w.PutI64(dropped_late_);
  tracker_.Serialize(w);
}

void WindowJoinOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(panes_.empty());
  const uint64_t num_panes = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t p = 0; p < num_panes; ++p) {
    const TimeMicros end = r.GetI64();
    const TimeMicros start = r.GetI64();
    const uint32_t num_streams = r.GetU32();
    KLINK_CHECK(r.ok());
    KLINK_CHECK_EQ(static_cast<int>(num_streams), num_inputs());
    Pane& pane = panes_[{end, start}];
    pane.per_stream.resize(static_cast<size_t>(num_streams));
    AddStateBytes(kBytesPerPane);
    for (auto& stream_map : pane.per_stream) {
      const uint64_t num_keys = r.GetU64();
      KLINK_CHECK(r.ok());
      stream_map.reserve(static_cast<size_t>(num_keys));
      for (uint64_t k = 0; k < num_keys; ++k) {
        const uint64_t key = r.GetU64();
        Aggregate agg;
        agg.count = r.GetI64();
        agg.sum = r.GetDouble();
        stream_map.emplace(key, agg);
        ++total_key_states_;
        AddStateBytes(kBytesPerKeyState);
      }
    }
  }
  for (TimeMicros& d : next_stream_deadline_) d = r.GetI64();
  fired_panes_ = r.GetI64();
  emitted_joins_ = r.GetI64();
  dropped_late_ = r.GetI64();
  tracker_.Restore(r);
  KLINK_CHECK(r.ok());
}

}  // namespace klink
