#include "src/operators/filter_operator.h"

#include <cstdint>
#include <utility>

#include "src/common/check.h"

namespace klink {
namespace {

// Stateless 64-bit mix (SplitMix64 finalizer).
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FilterOperator::FilterOperator(std::string name, double cost_micros,
                               PredicateFn keep, double expected_pass_rate)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      keep_(std::move(keep)) {
  KLINK_CHECK(keep_ != nullptr);
  KLINK_CHECK_GE(expected_pass_rate, 0.0);
  KLINK_CHECK_LE(expected_pass_rate, 1.0);
  set_selectivity_hint(expected_pass_rate);
}

FilterOperator::PredicateFn FilterOperator::HashPassRate(double pass_rate) {
  KLINK_CHECK_GE(pass_rate, 0.0);
  KLINK_CHECK_LE(pass_rate, 1.0);
  // Compare on 53 bits: converting pass_rate * 2^64 to uint64_t would
  // overflow (UB) at pass_rate = 1.0.
  const uint64_t threshold =
      static_cast<uint64_t>(pass_rate * static_cast<double>(1ULL << 53));
  return [threshold](const Event& e) {
    const uint64_t h =
        Mix64(e.key ^ Mix64(static_cast<uint64_t>(e.event_time)));
    return (h >> 11) < threshold;
  };
}

void FilterOperator::OnData(const Event& e, TimeMicros /*now*/, Emitter& out) {
  if (keep_(e)) EmitData(e, out);
}

void FilterOperator::ProcessBatch(const Event* events, int64_t n,
                                  BatchClock& clock, Emitter& out) {
  int64_t i = 0;
  while (i < n) {
    if (!events[i].is_data()) {
      Process(events[i], clock.Next(), out);
      ++i;
      continue;
    }
    int64_t j = i + 1;
    while (j < n && events[j].is_data()) ++j;
    const int64_t run = j - i;
    clock.Advance(run);
    NoteDataProcessed(run);
    batch_scratch_.clear();
    for (int64_t k = i; k < j; ++k) {
      if (keep_(events[k])) batch_scratch_.push_back(events[k]);
    }
    if (!batch_scratch_.empty()) {
      EmitDataRun(batch_scratch_.data(),
                  static_cast<int64_t>(batch_scratch_.size()), out);
    }
    i = j;
  }
}

}  // namespace klink
