#ifndef KLINK_OPERATORS_JOIN_OPERATOR_H_
#define KLINK_OPERATORS_JOIN_OPERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/operators/operator.h"
#include "src/window/swm_tracker.h"
#include "src/window/window_assigner.h"

namespace klink {

/// Windowed equi-join (group-by) over n >= 2 input streams.
///
/// Events are buffered as per-(window, stream, key) aggregates; a window is
/// unblocked only when *every* input stream has propagated a watermark
/// elapsing its deadline, i.e. when the minimum watermark across inputs
/// reaches the deadline (Sec. 3.3, Fig. 4). On unblocking, the operator
/// emits one joined result per key present in all streams of the pane,
/// then forwards the watermark flagged as SWM.
///
/// Per-stream progress (event delays, per-stream deadline sweeps) is
/// tracked separately so that Klink can compute one slack value per input
/// stream and prioritize by the minimum (Sec. 3.3).
class WindowJoinOperator final : public Operator {
 public:
  WindowJoinOperator(std::string name, double cost_micros,
                     std::unique_ptr<WindowAssigner> assigner, int num_inputs,
                     uint32_t output_payload_bytes = 64);

  /// ---- Operator overrides -------------------------------------------
  bool IsWindowed() const override { return true; }
  bool SupportsPartialComputation() const override { return true; }
  TimeMicros UpcomingDeadline() const override;
  const SwmTracker* swm_tracker() const override { return &tracker_; }
  DurationMicros DeadlinePeriod() const override { return assigner_->slide(); }

  /// ---- introspection -------------------------------------------------
  const WindowAssigner& assigner() const { return *assigner_; }
  int64_t fired_panes() const { return fired_panes_; }
  int64_t emitted_joins() const { return emitted_joins_; }
  int64_t dropped_late_events() const { return dropped_late_; }
  int64_t open_panes() const { return static_cast<int64_t>(panes_.size()); }

  static constexpr int64_t kBytesPerKeyState = 48;
  static constexpr int64_t kBytesPerPane = 96;

  /// ---- re-sharding ----------------------------------------------------
  /// Per-key blobs of (end, start, stream, count, sum) records.
  bool HasKeyedState() const override { return true; }
  void ExportKeyedState(std::vector<KeyedStateEntry>* out) override;
  void ImportKeyedState(const KeyedStateEntry& entry) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void OnStreamWatermark(const Event& incoming, int stream) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  struct Aggregate {
    int64_t count = 0;
    double sum = 0.0;
  };
  using PaneKey = std::pair<TimeMicros, TimeMicros>;  // (end, start)
  struct Pane {
    /// per_stream[s][key] -> aggregate of stream s contributions.
    std::vector<std::unordered_map<uint64_t, Aggregate>> per_stream;
  };

  void FirePane(const PaneKey& pane_key, Pane& pane, TimeMicros now,
                Emitter& out);

  std::unique_ptr<WindowAssigner> assigner_;
  uint32_t output_payload_bytes_;
  std::map<PaneKey, Pane> panes_;
  SwmTracker tracker_;
  /// Next deadline each stream's watermark has yet to elapse.
  std::vector<TimeMicros> next_stream_deadline_;
  int64_t total_key_states_ = 0;
  int64_t fired_panes_ = 0;
  int64_t emitted_joins_ = 0;
  int64_t dropped_late_ = 0;
  std::vector<WindowSpan> scratch_windows_;
  /// Scratch for probing in sorted-key order (restore-stable emission).
  std::vector<uint64_t> scratch_keys_;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_JOIN_OPERATOR_H_
