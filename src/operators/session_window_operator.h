#ifndef KLINK_OPERATORS_SESSION_WINDOW_OPERATOR_H_
#define KLINK_OPERATORS_SESSION_WINDOW_OPERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/operators/aggregate_operator.h"
#include "src/operators/operator.h"
#include "src/window/swm_tracker.h"

namespace klink {

/// Session windows: per-key windows that grow with activity and close
/// after `gap` of event-time inactivity. Unlike tumbling/sliding windows
/// (paper Sec. 2.1), a session's deadline is *data-dependent* — it is the
/// last event's timestamp + gap, and every new event pushes it out — which
/// makes SWM ingestion genuinely unpredictable and exercises Klink's
/// estimator beyond the periodic-deadline setting of the paper (an
/// extension experiment; see bench/extension_session_windows).
///
/// A watermark with timestamp >= (session end + gap)... more precisely
/// >= session close time fires the session: one result per (key, session)
/// with the configured aggregation, stamped with the session close time.
class SessionWindowOperator final : public Operator {
 public:
  /// Requires gap > 0.
  SessionWindowOperator(std::string name, double cost_micros,
                        DurationMicros gap, AggregationKind kind,
                        uint32_t output_payload_bytes = 64);

  DurationMicros gap() const { return gap_; }
  int64_t fired_sessions() const { return fired_sessions_; }
  int64_t open_sessions() const { return static_cast<int64_t>(by_close_.size()); }
  int64_t dropped_late_events() const { return dropped_late_; }
  int64_t merged_sessions() const { return merged_sessions_; }

  /// ---- Operator overrides --------------------------------------------
  bool IsWindowed() const override { return true; }
  bool SupportsPartialComputation() const override { return true; }
  TimeMicros UpcomingDeadline() const override;
  /// Sessions have no fixed period; the gap is the best available hint
  /// for the SWM periodicity term.
  DurationMicros DeadlinePeriod() const override { return gap_; }
  const SwmTracker* swm_tracker() const override { return &tracker_; }

  static constexpr int64_t kBytesPerSession = 96;

  /// ---- re-sharding ----------------------------------------------------
  bool HasKeyedState() const override { return true; }
  void ExportKeyedState(std::vector<KeyedStateEntry>* out) override;
  void ImportKeyedState(const KeyedStateEntry& entry) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  struct Session {
    TimeMicros start = 0;
    TimeMicros last_event = 0;  // close time = last_event + gap
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  double OutputValue(const Session& s) const;
  /// Re-indexes key's session under its (possibly new) close time.
  void Reindex(uint64_t key, TimeMicros old_close, TimeMicros new_close);

  DurationMicros gap_;
  AggregationKind kind_;
  uint32_t output_payload_bytes_;
  /// Open session per key, and an index ordered by close time for firing
  /// and deadline queries.
  std::unordered_map<uint64_t, Session> sessions_;
  std::multimap<TimeMicros, uint64_t> by_close_;
  SwmTracker tracker_{1};
  int64_t fired_sessions_ = 0;
  int64_t dropped_late_ = 0;
  int64_t merged_sessions_ = 0;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_SESSION_WINDOW_OPERATOR_H_
