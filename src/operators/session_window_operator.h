#ifndef KLINK_OPERATORS_SESSION_WINDOW_OPERATOR_H_
#define KLINK_OPERATORS_SESSION_WINDOW_OPERATOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/operators/aggregate_operator.h"
#include "src/operators/operator.h"
#include "src/window/lateness.h"
#include "src/window/swm_tracker.h"

namespace klink {

/// Session windows: per-key windows that grow with activity and close
/// after `gap` of event-time inactivity. Unlike tumbling/sliding windows
/// (paper Sec. 2.1), a session's deadline is *data-dependent* — it is the
/// last event's timestamp + gap, and every new event pushes it out — which
/// makes SWM ingestion genuinely unpredictable and exercises Klink's
/// estimator beyond the periodic-deadline setting of the paper (an
/// extension experiment; see bench/extension_session_windows).
///
/// A watermark with timestamp >= (session end + gap)... more precisely
/// >= session close time fires the session: one result per (key, session)
/// with the configured aggregation, stamped with the session close time.
///
/// With an allowed-lateness horizon (SetAllowedLateness), fired sessions
/// are retained — with their close time frozen as the result's identity —
/// until `watermark >= close + lateness`. A late event that falls inside
/// the span of an open or retained session folds into it; folds into a
/// retained session immediately emit a retraction+update pair correcting
/// the speculative result (window/lateness.h). Late events matching no
/// session are dropped: the watermark freezes session *structure*, the
/// horizon only re-opens session *contents*.
class SessionWindowOperator final : public Operator {
 public:
  /// Requires gap > 0.
  SessionWindowOperator(std::string name, double cost_micros,
                        DurationMicros gap, AggregationKind kind,
                        uint32_t output_payload_bytes = 64);

  /// Enables content corrections with the given retention horizon (0
  /// keeps the strict drop policy). Must be set before processing starts.
  void SetAllowedLateness(DurationMicros lateness);
  DurationMicros allowed_lateness() const { return allowed_lateness_; }

  DurationMicros gap() const { return gap_; }
  int64_t fired_sessions() const { return fired_sessions_; }
  int64_t open_sessions() const { return static_cast<int64_t>(by_close_.size()); }
  int64_t retained_sessions() const {
    return static_cast<int64_t>(retained_.size());
  }
  int64_t dropped_late_events() const { return dropped_late_; }
  int64_t merged_sessions() const { return merged_sessions_; }
  const LateEventCounters& late_counters() const { return late_; }

  /// ---- Operator overrides --------------------------------------------
  bool IsWindowed() const override { return true; }
  bool SupportsPartialComputation() const override { return true; }
  TimeMicros UpcomingDeadline() const override;
  /// Sessions have no fixed period; the gap is the best available hint
  /// for the SWM periodicity term.
  DurationMicros DeadlinePeriod() const override { return gap_; }
  const SwmTracker* swm_tracker() const override { return &tracker_; }

  static constexpr int64_t kBytesPerSession = 96;
  /// A retained session additionally carries its frozen close time and the
  /// emitted value needed for retraction.
  static constexpr int64_t kBytesPerRetainedSession = 112;

  /// ---- re-sharding ----------------------------------------------------
  bool HasKeyedState() const override { return true; }
  void ExportKeyedState(std::vector<KeyedStateEntry>* out) override;
  void ImportKeyedState(const KeyedStateEntry& entry) override;

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  struct Session {
    TimeMicros start = 0;
    TimeMicros last_event = 0;  // close time = last_event + gap
    int64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  /// A fired session inside the lateness horizon. `close` is frozen at
  /// firing time: late folds change the session's contents (and thus the
  /// corrected value) but never its result identity.
  struct RetainedSession {
    Session s;
    TimeMicros close = 0;
    double emitted = 0.0;
  };

  double OutputValue(const Session& s) const;
  /// Re-indexes key's session under its (possibly new) close time.
  void Reindex(uint64_t key, TimeMicros old_close, TimeMicros new_close);
  /// Folds a late event into the covering retained session, if any,
  /// emitting its retraction+update pair. Returns false when no retained
  /// session for the key spans the event.
  bool FoldLateIntoRetained(const Event& e, TimeMicros now, Emitter& out);
  /// Drops retained sessions whose retention horizon elapsed.
  void EvictRetained(TimeMicros min_watermark);

  DurationMicros gap_;
  AggregationKind kind_;
  uint32_t output_payload_bytes_;
  /// Open session per key, and an index ordered by close time for firing
  /// and deadline queries.
  std::unordered_map<uint64_t, Session> sessions_;
  std::multimap<TimeMicros, uint64_t> by_close_;
  /// Retained sessions keyed (key, close) for per-key late lookup, with a
  /// separate close-ordered index driving eviction.
  std::map<std::pair<uint64_t, TimeMicros>, RetainedSession> retained_;
  std::set<std::pair<TimeMicros, uint64_t>> retained_by_close_;
  DurationMicros allowed_lateness_ = 0;
  LateEventCounters late_;
  SwmTracker tracker_{1};
  int64_t fired_sessions_ = 0;
  int64_t dropped_late_ = 0;
  int64_t merged_sessions_ = 0;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_SESSION_WINDOW_OPERATOR_H_
