#ifndef KLINK_OPERATORS_SOURCE_OPERATOR_H_
#define KLINK_OPERATORS_SOURCE_OPERATOR_H_

#include <string>

#include "src/operators/operator.h"

namespace klink {

/// Ingress of a query. The engine deposits generated events (data,
/// watermarks, latency markers) into this operator's input queue at their
/// ingestion time; processing forwards them into the pipeline, charging
/// the per-event ingestion cost. Also exposes ingestion-side statistics
/// (network delays of recently ingested events) used by the runtime data
/// acquisition module.
class SourceOperator final : public Operator {
 public:
  SourceOperator(std::string name, double cost_micros);

  /// Network delay of the most recently processed data element, or -1.
  DurationMicros last_network_delay() const { return last_network_delay_; }

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override {
    w.PutI64(last_network_delay_);
  }
  void RestoreState(StateReader& r) override {
    last_network_delay_ = r.GetI64();
  }

 private:
  DurationMicros last_network_delay_ = -1;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_SOURCE_OPERATOR_H_
