#include "src/operators/chained_operator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/window/swm_tracker.h"

namespace klink {

/// Routes a sub-operator's outputs into the next link of the chain, or —
/// at the end of the chain — into the composite's outward emitter with
/// the composite's accounting applied.
class ChainedOperator::CascadeEmitter final : public Emitter {
 public:
  CascadeEmitter(ChainedOperator* chain, size_t next_index, TimeMicros now,
                 Emitter* out)
      : chain_(chain), next_index_(next_index), now_(now), out_(out) {}

  void Emit(const Event& e) override {
    if (next_index_ < chain_->ops_.size()) {
      chain_->RunThrough(e, next_index_, now_, *out_);
      return;
    }
    // End of chain.
    if (e.is_keyed_element()) {
      chain_->EmitData(e, *out_);
    } else if (e.is_watermark()) {
      // The composite's base class forwards one watermark per advance;
      // record whether the chain's own watermark swept a window and drop
      // the inner copy.
      chain_->SetForwardSwm(e.swm);
    } else {
      out_->Emit(e);
    }
  }

 private:
  ChainedOperator* chain_;
  size_t next_index_;
  TimeMicros now_;
  Emitter* out_;
};

double ChainedOperator::ChainCost(
    const std::vector<std::unique_ptr<Operator>>& ops) {
  double cost = 0.0;
  double carry = 1.0;
  for (const auto& op : ops) {
    cost += carry * op->cost_per_event();
    carry *= std::clamp(op->selectivity_hint(), 0.0, 1.0);
  }
  return cost;
}

ChainedOperator::ChainedOperator(std::string name,
                                 std::vector<std::unique_ptr<Operator>> ops)
    : Operator(std::move(name), ChainCost(ops), /*num_inputs=*/1),
      ops_(std::move(ops)) {
  KLINK_CHECK(!ops_.empty());
  double sel = 1.0;
  for (const auto& op : ops_) {
    KLINK_CHECK_EQ(op->num_inputs(), 1);  // chains fuse unary operators
    if (op->IsWindowed()) {
      KLINK_CHECK(windowed_ == nullptr);  // at most one window per chain
      windowed_ = op.get();
    }
    sel *= std::clamp(op->selectivity_hint(), 0.0, 1.0);
    // Sub-operator state surfaces as composite state (see OnMemoryDelta);
    // this binding is permanent — the Query binds only the composite.
    op->BindMemoryAccounting(this);
  }
  set_selectivity_hint(sel);
}

const Operator& ChainedOperator::chained(int i) const {
  KLINK_CHECK(i >= 0 && i < num_chained());
  return *ops_[static_cast<size_t>(i)];
}

bool ChainedOperator::SupportsPartialComputation() const {
  for (const auto& op : ops_) {
    if (op->SupportsPartialComputation()) return true;
  }
  return false;
}

TimeMicros ChainedOperator::UpcomingDeadline() const {
  return windowed_ == nullptr ? kNoTime : windowed_->UpcomingDeadline();
}

DurationMicros ChainedOperator::DeadlinePeriod() const {
  return windowed_ == nullptr ? 0 : windowed_->DeadlinePeriod();
}

const SwmTracker* ChainedOperator::swm_tracker() const {
  return windowed_ == nullptr ? nullptr : windowed_->swm_tracker();
}

void ChainedOperator::RunThrough(const Event& e, size_t index, TimeMicros now,
                                 Emitter& out) {
  CascadeEmitter next(this, index + 1, now, &out);
  ops_[index]->Process(e, now, next);
}

void ChainedOperator::OnData(const Event& e, TimeMicros now, Emitter& out) {
  RunThrough(e, 0, now, out);
}

void ChainedOperator::ProcessBatch(const Event* events, int64_t n,
                                   BatchClock& clock, Emitter& out) {
  for (int64_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    // Every element needs its own timestamp: sub-operators (watermark
    // generators, windows) read it.
    const TimeMicros now = clock.Next();
    if (e.is_data()) {
      NoteDataProcessed(1);
      RunThrough(e, 0, now, out);
    } else {
      Process(e, now, out);
    }
  }
}

void ChainedOperator::OnWatermark(const Event& incoming,
                                  TimeMicros /*min_watermark*/, TimeMicros now,
                                  Emitter& out) {
  // Default to non-SWM; the cascade records the chain's verdict when its
  // inner watermark reaches the end of the chain.
  SetForwardSwm(incoming.swm);
  RunThrough(incoming, 0, now, out);
}

void ChainedOperator::OnLatencyMarker(const Event& e, TimeMicros now,
                                      Emitter& out) {
  RunThrough(e, 0, now, out);
}

void ChainedOperator::OnRetraction(const Event& e, TimeMicros now,
                                   Emitter& out) {
  RunThrough(e, 0, now, out);
}

void ChainedOperator::OnUpdate(const Event& e, TimeMicros now, Emitter& out) {
  RunThrough(e, 0, now, out);
}

void ChainedOperator::SerializeState(StateWriter& w) const {
  w.PutU32(static_cast<uint32_t>(ops_.size()));
  for (const auto& op : ops_) op->Serialize(w);
}

void ChainedOperator::RestoreState(StateReader& r) {
  const uint32_t n = r.GetU32();
  KLINK_CHECK(r.ok());
  KLINK_CHECK_EQ(static_cast<int>(n), num_chained());
  for (auto& op : ops_) op->Restore(r);
  KLINK_CHECK(r.ok());
}

}  // namespace klink
