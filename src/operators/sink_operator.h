#ifndef KLINK_OPERATORS_SINK_OPERATOR_H_
#define KLINK_OPERATORS_SINK_OPERATOR_H_

#include <string>

#include "src/common/histogram.h"
#include "src/operators/operator.h"

namespace klink {

/// Output operator: terminal consumer that materializes results and
/// measures output latency (Sec. 6.1.2). Latency of an SWM (or latency
/// marker) is its processing time at this operator minus its event-time —
/// the end-to-end propagation delay including window blocking time.
class SinkOperator final : public Operator {
 public:
  SinkOperator(std::string name, double cost_micros);

  /// Distribution of SWM propagation delays (the paper's output latency).
  const Histogram& swm_latency() const { return swm_latency_; }

  /// Distribution of latency-marker propagation delays.
  const Histogram& marker_latency() const { return marker_latency_; }

  /// Number of result (data) events received.
  int64_t results_received() const { return results_received_; }

  /// Order-sensitive FNV-1a fingerprint of every result received
  /// (event_time, key, value bits). Two runs produced identical results in
  /// identical order iff counts and hashes match — used by the network
  /// ingest loopback tests to prove TCP ingestion reproduces in-process
  /// ingestion exactly.
  uint64_t results_hash() const { return results_hash_; }

  /// Event-time of the latest result received, or kNoTime.
  TimeMicros last_result_time() const { return last_result_time_; }

  /// Clears the recorded latency distributions and counters. Experiments
  /// call this at the end of the warm-up phase so reported statistics
  /// cover only steady state.
  void ResetStats();

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  static constexpr uint64_t kHashBasis = 14695981039346656037ull;

  Histogram swm_latency_;
  Histogram marker_latency_;
  int64_t results_received_ = 0;
  uint64_t results_hash_ = kHashBasis;
  TimeMicros last_result_time_ = kNoTime;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_SINK_OPERATOR_H_
