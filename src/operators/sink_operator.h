#ifndef KLINK_OPERATORS_SINK_OPERATOR_H_
#define KLINK_OPERATORS_SINK_OPERATOR_H_

#include <string>

#include "src/common/histogram.h"
#include "src/operators/operator.h"
#include "src/window/lateness.h"

namespace klink {

/// Output operator: terminal consumer that materializes results and
/// measures output latency (Sec. 6.1.2). Latency of an SWM (or latency
/// marker) is its processing time at this operator minus its event-time —
/// the end-to-end propagation delay including window blocking time.
class SinkOperator final : public Operator {
 public:
  SinkOperator(std::string name, double cost_micros);

  /// Must match the allowed-lateness horizon of the upstream windowed
  /// operators. With a non-zero horizon the sink folds results through a
  /// ConvergingResultLog: retraction+update pairs replace the speculative
  /// result they correct, so the folded hash equals the hash an in-order
  /// run would produce once the horizon elapses (window/lateness.h). With
  /// a zero horizon results are folded in arrival order, byte-identical
  /// to the strict drop policy.
  void SetAllowedLateness(DurationMicros lateness);
  DurationMicros allowed_lateness() const { return allowed_lateness_; }

  /// Distribution of SWM propagation delays (the paper's output latency).
  const Histogram& swm_latency() const { return swm_latency_; }

  /// Distribution of latency-marker propagation delays.
  const Histogram& marker_latency() const { return marker_latency_; }

  /// Number of live results: data/update events received minus matched
  /// retractions — the cardinality of the converged result set.
  int64_t results_received() const { return results_received_; }

  /// Retractions received, and those that found no matching live result
  /// (possible only when warm-up reset discarded the speculative result
  /// they correct — never in steady state).
  int64_t retractions_received() const { return retractions_received_; }
  int64_t unmatched_retractions() const { return unmatched_retractions_; }

  /// Order-sensitive FNV-1a fingerprint of the results. With
  /// allowed_lateness == 0 this folds every result in arrival order. With
  /// a non-zero horizon it is the converging-log fold: finalized prefix
  /// plus the canonically ordered still-correctable tail. Two runs
  /// produced identical converged results iff counts and hashes match.
  uint64_t results_hash() const;

  /// Event-time of the latest result received, or kNoTime.
  TimeMicros last_result_time() const { return last_result_time_; }

  /// Clears the recorded latency distributions and counters. Experiments
  /// call this at the end of the warm-up phase so reported statistics
  /// cover only steady state.
  void ResetStats();

 protected:
  void OnData(const Event& e, TimeMicros now, Emitter& out) override;
  void OnRetraction(const Event& e, TimeMicros now, Emitter& out) override;
  void OnUpdate(const Event& e, TimeMicros now, Emitter& out) override;
  void OnWatermark(const Event& incoming, TimeMicros min_watermark,
                   TimeMicros now, Emitter& out) override;
  void OnLatencyMarker(const Event& e, TimeMicros now, Emitter& out) override;
  void SerializeState(StateWriter& w) const override;
  void RestoreState(StateReader& r) override;

 private:
  static constexpr uint64_t kHashBasis = ConvergingResultLog::kHashBasis;

  /// Appends a result to whichever fold is active.
  void Absorb(const Event& e);

  Histogram swm_latency_;
  Histogram marker_latency_;
  DurationMicros allowed_lateness_ = 0;
  int64_t results_received_ = 0;
  int64_t retractions_received_ = 0;
  int64_t unmatched_retractions_ = 0;
  uint64_t results_hash_ = kHashBasis;
  /// Active only when allowed_lateness_ > 0.
  ConvergingResultLog log_;
  TimeMicros last_result_time_ = kNoTime;
};

}  // namespace klink

#endif  // KLINK_OPERATORS_SINK_OPERATOR_H_
