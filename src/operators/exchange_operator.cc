#include "src/operators/exchange_operator.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/fault_injection.h"

namespace klink {

namespace {

uint64_t ValueBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Merge rank of a keyed element's kind: a retraction always precedes the
/// update that replaces it, and both precede a fresh data result that ties
/// on (event_time, key) — the sink applies remove-before-insert, so this
/// order keeps its converging-result fold canonical across shard counts.
int KindRank(EventKind kind) {
  switch (kind) {
    case EventKind::kRetraction:
      return 0;
    case EventKind::kUpdate:
      return 1;
    case EventKind::kData:
      return 2;
    case EventKind::kWatermark:
    case EventKind::kLatencyMarker:
    case EventKind::kCheckpointBarrier:
      break;  // controls are never buffered in merge segments
  }
  return 3;
}

/// Canonical flush order: the fields the sink's results hash folds, in hash
/// order, with the correction rank breaking (event_time, key) ties. Events
/// that tie on all four are hash-indistinguishable, so their relative order
/// is irrelevant.
bool CanonicalLess(const Event& a, const Event& b) {
  if (a.event_time != b.event_time) return a.event_time < b.event_time;
  if (a.key != b.key) return a.key < b.key;
  if (a.kind != b.kind) return KindRank(a.kind) < KindRank(b.kind);
  return ValueBits(a.value) < ValueBits(b.value);
}

void PutEvent(StateWriter& w, const Event& e) {
  w.PutU8(static_cast<uint8_t>(e.kind));
  w.PutU32(static_cast<uint32_t>(e.stream));
  w.PutI64(e.event_time);
  w.PutI64(e.ingest_time);
  w.PutU64(e.key);
  w.PutDouble(e.value);
  w.PutU32(e.payload_bytes);
  w.PutBool(e.swm);
}

Event GetEvent(StateReader& r) {
  Event e;
  e.kind = static_cast<EventKind>(r.GetU8());
  e.stream = static_cast<int32_t>(r.GetU32());
  e.event_time = r.GetI64();
  e.ingest_time = r.GetI64();
  e.key = r.GetU64();
  e.value = r.GetDouble();
  e.payload_bytes = r.GetU32();
  e.swm = r.GetBool();
  return e;
}

}  // namespace

/// ---- PartitionExchangeOperator ---------------------------------------

PartitionExchangeOperator::PartitionExchangeOperator(std::string name,
                                                     double cost_micros,
                                                     int active_shards,
                                                     int max_shards)
    : Operator(std::move(name), cost_micros, /*num_inputs=*/1),
      active_shards_(active_shards),
      max_shards_(max_shards) {
  KLINK_CHECK_GE(active_shards, 1);
  KLINK_CHECK_GE(max_shards, active_shards);
}

void PartitionExchangeOperator::SetTargets(std::vector<StreamQueue*> targets) {
  KLINK_CHECK_EQ(static_cast<int>(targets.size()), max_shards_);
  for (const StreamQueue* q : targets) KLINK_CHECK(q != nullptr);
  targets_ = std::move(targets);
}

void PartitionExchangeOperator::ArmReshard(int new_count,
                                           uint64_t pause_at_epoch) {
  KLINK_CHECK_GE(new_count, 1);
  KLINK_CHECK_GE(max_shards_, new_count);
  KLINK_CHECK(!paused_);
  KLINK_CHECK_EQ(pending_new_count_, 0);
  KLINK_CHECK_GT(pause_at_epoch, last_broadcast_epoch_);
  pending_new_count_ = new_count;
  pause_at_epoch_ = pause_at_epoch;
}

void PartitionExchangeOperator::CompleteReshard() {
  KLINK_CHECK(paused_);
  KLINK_CHECK_GT(pending_new_count_, 0);
  active_shards_ = pending_new_count_;
  pending_new_count_ = 0;
  pause_at_epoch_ = 0;
  paused_ = false;
  // Replay held elements through normal routing, in hold order.
  std::vector<Event> replay;
  replay.swap(hold_);
  for (const Event& e : replay) Route(e);
}

void PartitionExchangeOperator::Route(const Event& e) {
  KLINK_CHECK(!targets_.empty());
  if (paused_) {
    hold_.push_back(e);
    return;
  }
  if (e.is_keyed_element()) {
    targets_[static_cast<size_t>(ShardOf(e.key, active_shards_))]->Push(e);
    return;
  }
  // Controls are broadcast to every shard queue, inactive ones included,
  // so watermark merging and barrier alignment never wait on a shard and
  // an inactive shard's bookkeeping is live when a re-shard activates it.
  for (StreamQueue* q : targets_) q->Push(e);
  if (e.is_barrier()) {
    last_broadcast_epoch_ = e.barrier_epoch();
    if (pending_new_count_ != 0 && e.barrier_epoch() >= pause_at_epoch_) {
      paused_ = true;
    }
  }
}

void PartitionExchangeOperator::ProcessBatch(const Event* events, int64_t n,
                                             BatchClock& clock, Emitter& out) {
  int64_t i = 0;
  while (i < n) {
    if (events[i].is_keyed_element()) {
      int64_t j = i + 1;
      while (j < n && events[j].is_keyed_element()) ++j;
      clock.Advance(j - i);
      NoteDataProcessed(j - i);
      for (int64_t k = i; k < j; ++k) EmitData(events[k], out);
      i = j;
    } else {
      Process(events[i], clock.Next(), out);
      ++i;
    }
  }
}

void PartitionExchangeOperator::SerializeState(StateWriter& w) const {
  // The hold buffer is deliberately NOT serialized. SerializeState runs at
  // barrier alignment, before the aligning barrier is routed — so while
  // paused, every held element precedes that barrier in hold order and
  // CompleteReshard replays it downstream *before* the barrier. The shard
  // and merge snapshots of this epoch therefore already contain the held
  // elements (the base bookkeeping above counts them as emitted, too);
  // they are downstream channel state, and checkpointing them here would
  // deliver them twice after a restore — double-applied watermarks skew
  // the merge's segment counters and strand data in flushed segments.
  w.PutU32(static_cast<uint32_t>(active_shards_));
  w.PutU32(static_cast<uint32_t>(pending_new_count_));
  w.PutU64(pause_at_epoch_);
  w.PutBool(paused_);
  w.PutU64(last_broadcast_epoch_);
  if (TestFaultEnabled(TestFault::kCheckpointHoldBuffer)) {
    // MUTATION (schedule_explorer_test): re-inject the PR-8 bug the comment
    // above explains — checkpoint the hold buffer anyway. A restore then
    // replays held elements whose effects the downstream snapshots already
    // contain, and the explorer's hash oracle must catch the double-apply.
    w.PutU64(hold_.size());
    for (const Event& e : hold_) PutEvent(w, e);
  }
}

void PartitionExchangeOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(hold_.empty());
  active_shards_ = static_cast<int>(r.GetU32());
  pending_new_count_ = static_cast<int>(r.GetU32());
  pause_at_epoch_ = r.GetU64();
  paused_ = r.GetBool();
  last_broadcast_epoch_ = r.GetU64();
  if (TestFaultEnabled(TestFault::kCheckpointHoldBuffer)) {
    const uint64_t n = r.GetU64();
    KLINK_CHECK(r.ok());
    for (uint64_t i = 0; i < n; ++i) hold_.push_back(GetEvent(r));
  }
  KLINK_CHECK(r.ok());
  KLINK_CHECK_GE(active_shards_, 1);
  KLINK_CHECK_GE(max_shards_, active_shards_);
}

/// ---- MergeExchangeOperator -------------------------------------------

MergeExchangeOperator::MergeExchangeOperator(std::string name,
                                             double cost_micros,
                                             int num_shards)
    : Operator(std::move(name), cost_micros, num_shards),
      seen_watermarks_(static_cast<size_t>(num_shards), 0),
      seen_markers_(static_cast<size_t>(num_shards), 0) {
  KLINK_CHECK_GE(num_shards, 1);
}

void MergeExchangeOperator::BufferElement(const Event& e) {
  KLINK_CHECK(e.stream >= 0 && e.stream < num_inputs());
  Segment& seg = buffers_[seen_watermarks_[static_cast<size_t>(e.stream)]];
  seg.events.push_back(e);
  const int64_t bytes =
      static_cast<int64_t>(e.payload_bytes) + kPerBufferedOverhead;
  seg.bytes += bytes;
  ++buffered_events_;
  AddStateBytes(bytes);
}

void MergeExchangeOperator::OnData(const Event& e, TimeMicros /*now*/,
                                   Emitter& /*out*/) {
  BufferElement(e);
}

void MergeExchangeOperator::OnRetraction(const Event& e, TimeMicros /*now*/,
                                         Emitter& /*out*/) {
  BufferElement(e);
}

void MergeExchangeOperator::OnUpdate(const Event& e, TimeMicros /*now*/,
                                     Emitter& /*out*/) {
  BufferElement(e);
}

void MergeExchangeOperator::OnStreamWatermark(const Event& incoming,
                                              int stream) {
  auto& count = seen_watermarks_[static_cast<size_t>(stream)];
  // This watermark closes the segment the input was filling; OR the SWM
  // flags so the merged watermark sweeps iff any shard's did.
  if (incoming.swm) buffers_[count].swm = true;
  ++count;
}

void MergeExchangeOperator::OnWatermark(const Event& /*incoming*/,
                                        TimeMicros /*min_watermark*/,
                                        TimeMicros /*now*/, Emitter& out) {
  // The minimum across inputs advances exactly when every shard has
  // delivered the watermark closing segment `flushed_` (identical control
  // broadcast + FIFO queues), so that segment is complete: flush it in
  // canonical order and let the base forward the merged watermark after.
  bool swm = false;
  const auto it = buffers_.find(flushed_);
  if (it != buffers_.end()) {
    Segment& seg = it->second;
    swm = seg.swm;
    if (!seg.events.empty()) {
      flush_scratch_.swap(seg.events);
      std::sort(flush_scratch_.begin(), flush_scratch_.end(), CanonicalLess);
      EmitDataRun(flush_scratch_.data(),
                  static_cast<int64_t>(flush_scratch_.size()), out);
      buffered_events_ -= static_cast<int64_t>(flush_scratch_.size());
      flush_scratch_.clear();
    }
    AddStateBytes(-seg.bytes);
    buffers_.erase(it);
  }
  ++flushed_;
  SetForwardSwm(swm);
}

void MergeExchangeOperator::OnLatencyMarker(const Event& e, TimeMicros /*now*/,
                                            Emitter& out) {
  KLINK_CHECK(e.stream >= 0 && e.stream < num_inputs());
  ++seen_markers_[static_cast<size_t>(e.stream)];
  const int64_t min =
      *std::min_element(seen_markers_.begin(), seen_markers_.end());
  // Forward one copy when the slowest shard delivers its (identical) copy.
  if (min > forwarded_markers_) {
    ++forwarded_markers_;
    out.Emit(e);
  }
}

void MergeExchangeOperator::SerializeState(StateWriter& w) const {
  for (const int64_t c : seen_watermarks_) w.PutI64(c);
  for (const int64_t c : seen_markers_) w.PutI64(c);
  w.PutI64(forwarded_markers_);
  w.PutI64(flushed_);
  w.PutU64(static_cast<uint64_t>(buffers_.size()));
  for (const auto& [segment, seg] : buffers_) {
    w.PutI64(segment);
    w.PutBool(seg.swm);
    w.PutI64(seg.bytes);
    w.PutU64(static_cast<uint64_t>(seg.events.size()));
    for (const Event& e : seg.events) PutEvent(w, e);
  }
}

void MergeExchangeOperator::RestoreState(StateReader& r) {
  KLINK_CHECK(buffers_.empty());
  for (int64_t& c : seen_watermarks_) c = r.GetI64();
  for (int64_t& c : seen_markers_) c = r.GetI64();
  forwarded_markers_ = r.GetI64();
  flushed_ = r.GetI64();
  const uint64_t num_segments = r.GetU64();
  KLINK_CHECK(r.ok());
  for (uint64_t s = 0; s < num_segments; ++s) {
    const int64_t segment = r.GetI64();
    Segment& seg = buffers_[segment];
    seg.swm = r.GetBool();
    seg.bytes = r.GetI64();
    const uint64_t n = r.GetU64();
    KLINK_CHECK(r.ok());
    seg.events.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) seg.events.push_back(GetEvent(r));
    buffered_events_ += static_cast<int64_t>(n);
    AddStateBytes(seg.bytes);
  }
  KLINK_CHECK(r.ok());
}

}  // namespace klink
