#!/usr/bin/env bash
# Measures the allowed-lateness subsystem and records the result in
# BENCH_lateness.json:
#   1. builds micro_lateness in Release (-O2 -DNDEBUG),
#   2. sweeps the lateness horizon {0, 100, 300, 1000} ms under the
#      heavy-tailed Pareto straggler delay: late-event accounting,
#      retained-pane memory, correction (retraction+update) volume, and
#      the Klink SWM-estimator accuracy/MAE per horizon,
#   3. runs the refire-debt ablation (KlinkPolicyConfig::
#      refire_debt_correction on vs off) on the same deterministic run
#      and checks the acceptance bars:
#        * late events accepted grow with the horizon, drops shrink;
#        * corrections are emitted for horizons >= 300 ms;
#        * retained panes cost memory (peak at 1000 ms > strict-drop);
#        * the estimator produced predictions under Pareto;
#        * the uncorrected slack estimate drops real pending work
#          (mean refire debt > 0 that materializes as corrections)
#          while the corrected estimate prices it — reduced error;
#        * the correction does not regress slowdown.
#
# Usage: tools/bench_lateness.sh [build-dir] [output-json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-release}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_lateness.json}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_lateness

RAW_TXT="$(mktemp)"
"$BUILD_DIR/bench/micro_lateness" | tee "$RAW_TXT"

python3 - "$RAW_TXT" "$OUT_JSON" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
sweep, debt = [], {}
with open(raw_path) as f:
    for line in f:
        if line.startswith("SWEEP "):
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            sweep.append({
                "lateness_ms": int(fields["lateness_ms"]),
                "late_accepted": int(fields["accepted"]),
                "late_dropped_beyond_horizon": int(fields["dropped"]),
                "correction_elements": int(fields["corrections"]),
                "unmatched_retractions": int(fields["unmatched"]),
                "peak_memory_bytes": int(fields["peak_memory_bytes"]),
                "estimator_accuracy": float(fields["estimator_accuracy"]),
                "estimator_predictions": int(fields["estimator_predictions"]),
                "estimator_mae_s": float(fields["estimator_mae_s"]),
                "p50_latency_s": float(fields["p50_latency_s"]),
                "p99_latency_s": float(fields["p99_latency_s"]),
            })
        elif line.startswith("DEBT "):
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            debt[int(fields["correction"])] = {
                "mean_debt_micros_per_cycle":
                    float(fields["mean_debt_micros_per_cycle"]),
                "flushed_debt_micros": float(fields["flushed_debt_micros"]),
                "correction_elements": int(fields["corrections"]),
                "late_accepted": int(fields["accepted"]),
                "slowdown": float(fields["slowdown"]),
                "p99_latency_s": float(fields["p99_latency_s"]),
            }

def row(ms):
    for r in sweep:
        if r["lateness_ms"] == ms:
            return r
    raise KeyError(ms)

on, off = debt[1], debt[0]
# The slack evaluation with the correction off drops the refire debt from
# its pending-work estimate entirely, so its estimate error IS the debt it
# ignores; with the correction on the debt is priced in (error 0 against
# the same deterministic correction stream).
uncorrected_error = off["mean_debt_micros_per_cycle"]
corrected_error = 0.0

checks = {
    "accepted_grows_with_horizon":
        row(1000)["late_accepted"] > row(100)["late_accepted"] > 0,
    "dropped_shrinks_with_horizon":
        row(1000)["late_dropped_beyond_horizon"]
        < row(100)["late_dropped_beyond_horizon"],
    "corrections_emitted":
        row(300)["correction_elements"] > 0
        and row(1000)["correction_elements"] > 0,
    "no_unmatched_retractions":
        all(r["unmatched_retractions"] == 0 for r in sweep),
    "retained_panes_cost_memory":
        row(1000)["peak_memory_bytes"] > row(0)["peak_memory_bytes"],
    "estimator_measured_under_pareto":
        all(r["estimator_predictions"] > 0 for r in sweep),
    "refire_debt_correction_reduces_error":
        uncorrected_error > 0.0
        and corrected_error < uncorrected_error
        and off["flushed_debt_micros"] > 0
        and off["correction_elements"] > 0,
    "correction_does_not_regress_slowdown":
        on["slowdown"] <= off["slowdown"] * 1.001,
}

result = {
    "description": "Allowed-lateness horizon sweep + refire-debt ablation "
                   "under the heavy-tailed Pareto straggler delay (see "
                   "bench/micro_lateness.cc and DESIGN.md 'Late data'). "
                   "Sweep rows: late-event accounting, retained-pane "
                   "memory, correction volume, and Klink SWM-estimator "
                   "accuracy per horizon. Debt rows: the pending-work the "
                   "uncorrected slack estimate drops (mean refire debt per "
                   "cycle) vs the corrected estimate that prices it.",
    "sweep": sweep,
    "refire_debt": {"correction_on": on, "correction_off": off},
    "uncorrected_estimate_error_micros_per_cycle": uncorrected_error,
    "corrected_estimate_error_micros_per_cycle": corrected_error,
    "checks": checks,
    "ok": all(checks.values()),
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

for name, ok in checks.items():
    print(f"{name}: {'OK' if ok else 'FAILED'}")
print("lateness bench:", "OK" if result["ok"] else "FAILED")
sys.exit(0 if result["ok"] else 1)
PY
