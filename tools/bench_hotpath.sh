#!/usr/bin/env bash
# Measures the batched hot path and records the result in BENCH_hotpath.json:
#   1. builds micro_hotpath + fig06a in Release (-O2 -DNDEBUG),
#   2. runs the hot-path microbenchmarks (queue transfer, emitter routing,
#      and the scalar-vs-batched drain whose speedup is the acceptance
#      number, target >= 1.3x),
#   3. runs the fig06a smoke with both executors and checks the outputs are
#      byte-identical (the batching determinism contract).
#
# Usage: tools/bench_hotpath.sh [build-dir] [output-json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-release}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_hotpath.json}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_hotpath fig06a_ysb_latency

RAW_JSON="$(mktemp)"
"$BUILD_DIR/bench/micro_hotpath" \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$RAW_JSON"

SEQ_OUT="$(mktemp)"
THR_OUT="$(mktemp)"
KLINK_BENCH_SMOKE=1 "$BUILD_DIR/bench/fig06a_ysb_latency" --executor=sequential > "$SEQ_OUT"
KLINK_BENCH_SMOKE=1 "$BUILD_DIR/bench/fig06a_ysb_latency" --executor=threads > "$THR_OUT"
if cmp -s "$SEQ_OUT" "$THR_OUT"; then
  DETERMINISM="identical"
else
  DETERMINISM="MISMATCH"
fi

python3 - "$RAW_JSON" "$OUT_JSON" "$DETERMINISM" <<'PY'
import json
import sys

raw_path, out_path, determinism = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)

bench = {b["name"]: b for b in raw["benchmarks"]}

def cpu_ns(name):
    b = bench[name]
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]
    return b["cpu_time"] * scale

def speedup(scalar, batched):
    return round(cpu_ns(scalar) / cpu_ns(batched), 3)

result = {
    "description": "Batched hot-path benchmarks (see bench/micro_hotpath.cc); "
                   "drain compares the pre-batching scalar loop against the "
                   "batched ExecutionContext::RunQuery on the same pipeline.",
    "context": raw.get("context", {}),
    "benchmarks": {
        name: {
            "cpu_time": bench[name]["cpu_time"],
            "time_unit": bench[name]["time_unit"],
            "items_per_second": bench[name].get("items_per_second"),
        }
        for name in sorted(bench)
    },
    "speedups": {
        "queue_transfer": speedup("BM_QueueScalarTransfer",
                                  "BM_QueueBatchTransfer"),
        "emitter_routing": speedup("BM_EmitterScalarRouting",
                                   "BM_EmitterBatchRouting"),
        "drain": speedup("BM_DrainScalar", "BM_DrainBatched"),
    },
    "drain_speedup_target": 1.3,
    "fig06a_smoke_sequential_vs_threads": determinism,
}
result["drain_speedup_ok"] = result["speedups"]["drain"] >= 1.3

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(json.dumps(result["speedups"], indent=2))
ok = result["drain_speedup_ok"] and determinism == "identical"
print("hot path:", "OK" if ok else "FAILED")
sys.exit(0 if ok else 1)
PY
