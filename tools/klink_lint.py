#!/usr/bin/env python3
"""Repo-local lint for Klink: the correctness rules generic tooling can't see.

Klink's scheduling decisions are driven by exact bookkeeping — watermark
monotonicity, SWM epoch ordering, per-query byte accounting (PAPER.md
Sec. 3) — and the engine replays byte-identically across executor backends.
That contract is easy to break silently: one wall-clock read in a policy, one
counter mutated behind the MemoryDeltaSink's back. These rules make the
contract mechanical:

  determinism     src/ (outside src/harness/) must not read wall clocks or
                  non-seeded randomness. The engine runs on virtual time;
                  the harness and the real-socket net paths are the only
                  places real time may enter, and the latter need an
                  explicit allow pragma.
  accounting      The incremental byte counters (Operator::state_bytes_,
                  Query::memory_bytes_, StreamQueue::bytes_/data_count_) may
                  only be mutated by their owning accounting methods. Any
                  other mutation bypasses the MemoryDeltaSink chain and
                  desynchronizes Query::MemoryBytes() from reality.
  sched-scan      Policy code (src/sched/, src/klink/) must not iterate the
                  full snapshot per scheduling cycle — steady-state work is
                  O(touched) via the incremental indexes. Rebuild cycles,
                  audits, and by-definition full-scan baselines carry an
                  allow pragma stating why the scan is legitimate.
  status-discard  common/status.h must keep Status/StatusOr [[nodiscard]]
                  (the compiler then enforces no-unchecked-Status repo-wide).
  raw-new-delete  No raw new/delete expressions; ownership goes through
                  std::unique_ptr / containers.
  include-guard   Headers carry the canonical KLINK_<PATH>_H_ guard.
  iwyu            Headers directly include the std headers whose symbols
                  they name (a deterministic include-what-you-use subset
                  for the public headers; no compiler needed).
  event-kind-switch
                  Switches over EventKind must enumerate every kind, with
                  no `default:` arm. The repo compiles with -Wswitch as an
                  error, so an exhaustive switch turns every future kind
                  addition (e.g. kRetraction/kUpdate for allowed lateness)
                  into a compile error at each decode/route/merge site; a
                  `default:` silently swallows the new kind instead — the
                  exact bug class the wire decoder and exchange merge must
                  never have.
  relaxed-atomics Every std::memory_order_relaxed in src/ carries an allow
                  pragma citing the invariant that makes relaxed sound
                  (monotonic counter merged under the executor barrier,
                  test-only flag, ...). Unaudited relaxed atomics are how
                  cross-thread protocols acquire invisible ordering bugs.
  lock-order      (whole-tree) Builds the lock-order graph: an edge A -> B
                  for every mutex B acquired while A is held — from nested
                  MutexLock/Mutex::Lock scopes, from KLINK_REQUIRES
                  contracts on the enclosing function, and from
                  KLINK_ACQUIRED_BEFORE/_AFTER declarations — and rejects
                  cycles. A cycle is one schedule away from deadlock; the
                  schedule explorer (src/runtime/schedule_explorer.h) finds
                  it dynamically, this rule finds it before the code runs.
  guarded-by      (whole-tree) Every access to a KLINK_GUARDED_BY(mu) field
                  must sit inside a MutexLock scope on mu, in a function
                  annotated KLINK_REQUIRES(mu)/KLINK_ACQUIRE(mu), or in a
                  constructor/destructor (clang's analysis exempts those).
                  This is the lexical re-check of what a clang
                  -Wthread-safety build proves exactly; it keeps GCC-only
                  environments honest about the same annotations.

The concurrency rules (lock-order, guarded-by) are deliberately a lexical
approximation: brace-matched scopes, no type or alias analysis. Clang with
-Werror=thread-safety (the CI thread-safety job) is the authoritative
checker; these rules exist so a GCC-only checkout still gets a net.

AST mode: with --ast=auto (default) the script uses libclang when the
`clang.cindex` Python bindings are importable and upgrades the weakest
lexical rules (raw-new-delete, event-kind-switch) to true AST checks —
`= delete`d functions, prose in macros, and split-line expressions stop
mattering. When libclang is absent the script says so once and every rule
falls back to the lexical implementation; --ast=on makes libclang a hard
requirement (CI), --ast=off never loads it.

Suppression: append `// klink-lint: allow(<rule>): <reason>` to the line,
or put it on the line directly above.

Golden tests: tests/lint/lint_rules_test.py replays every rule against the
fixture snippets in tests/lint/fixtures/ (each declares its intended repo
path and expected findings) and then asserts the real tree is clean; ctest
runs it as lint_rules_test.

Usage:
  tools/klink_lint.py [--repo DIR] [--changed] [--ast {auto,on,off}]
                      [--clang-tidy EXE] [--compile-commands PATH]
                      [files...]

Exit status is non-zero when any finding (or clang-tidy diagnostic) is
reported. Run via `cmake --build build --target lint`.
"""

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys

# ---------------------------------------------------------------------------
# File collection

CXX_EXTENSIONS = (".h", ".cc", ".cpp")


def repo_files(repo, subdirs):
    out = []
    for sub in subdirs:
        base = os.path.join(repo, sub)
        for root, dirs, names in os.walk(base):
            dirs[:] = sorted(d for d in dirs if not d.startswith("build"))
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(os.path.relpath(os.path.join(root, name), repo))
    return out


def changed_files(repo):
    """Files differing from the merge base with origin/main (or HEAD~1)."""
    for base in ("origin/main", "main", "HEAD~1"):
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
            cwd=repo, capture_output=True, text=True)
        if proc.returncode == 0:
            return [f for f in proc.stdout.splitlines()
                    if f.endswith(CXX_EXTENSIONS)]
    return []


# ---------------------------------------------------------------------------
# Lexical preprocessing: strip comments and string/char literals so token
# rules never fire on prose. Line-oriented; tracks /* */ across lines.

def strip_code(lines):
    """Returns lines with comments and literal contents blanked out."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                res.append(quote)
                i += 1
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


# ---------------------------------------------------------------------------
# Rules

class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


ALLOW_RE = re.compile(r"klink-lint:\s*allow\(([a-z-]+)\)")


def allowed(rule, raw_lines, idx):
    """True if line idx (0-based) or the line above carries an allow pragma."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(raw_lines[j])
        if m and m.group(1) == rule:
            return True
    return False


DETERMINISM_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time()"),
    (re.compile(r"\b(localtime|mktime|gmtime)\s*\("), "calendar time"),
]


def check_determinism(path, raw, code):
    # Virtual-time engine: real time may enter only through the harness
    # (which owns wall-clock measurement) or an explicitly allowed site.
    if not path.startswith("src/") or path.startswith("src/harness/"):
        return
    for i, line in enumerate(code):
        for pat, what in DETERMINISM_PATTERNS:
            if pat.search(line) and not allowed("determinism", raw, i):
                yield Finding(path, i + 1, "determinism",
                              f"{what} in the virtual-time engine; real time "
                              "belongs in src/harness/ (or add an allow "
                              "pragma with a reason)")


# Counter -> the only files allowed to mutate it (the accounting methods).
ACCOUNTING_OWNERS = {
    "state_bytes_": {"src/operators/operator.h"},
    "memory_bytes_": {"src/query/query.h", "src/query/query.cc"},
    "bytes_": {"src/event/stream_queue.h", "src/event/stream_queue.cc"},
    "data_count_": {"src/event/stream_queue.h", "src/event/stream_queue.cc"},
}
MUTATION_RE = r"(\+\+|--|[+\-*/|&^]=|=(?![=]))"


def check_accounting(path, raw, code):
    if not (path.startswith("src/") or path.startswith("tools/")):
        return
    for counter, owners in ACCOUNTING_OWNERS.items():
        if path in owners:
            continue
        pat = re.compile(
            rf"(\b{counter}\s*{MUTATION_RE}|(\+\+|--)\s*{counter}\b)")
        for i, line in enumerate(code):
            if pat.search(line) and not allowed("accounting", raw, i):
                yield Finding(
                    path, i + 1, "accounting",
                    f"direct mutation of {counter} outside its accounting "
                    f"method bypasses MemoryDeltaSink; use the owner in "
                    f"{sorted(owners)[0]}")


SCHED_SCAN_RE = re.compile(
    r"for\s*\(.*(\.|->)\s*queries\b|(\.|->)\s*queries\s*\[")


def allowed_near(rule, raw_lines, idx, up, down):
    """Like allowed(), but the pragma may sit in the comment block up to
    `up` lines above or `down` lines below (the loop's own body comment)."""
    for j in range(max(0, idx - up), min(len(raw_lines), idx + down + 1)):
        m = ALLOW_RE.search(raw_lines[j])
        if m and m.group(1) == rule:
            return True
    return False


def check_sched_scan(path, raw, code):
    # Steady-state scheduling is O(touched), not O(queries): policy code
    # iterating the full snapshot per cycle reintroduces the linear
    # evaluator the incremental indexes exist to avoid. Legitimate scans
    # (rebuild cycles, audit recomputation, policies that are full-scan by
    # definition) carry an allow pragma stating why.
    if not (path.startswith("src/sched/") or path.startswith("src/klink/")):
        return
    for i, line in enumerate(code):
        if SCHED_SCAN_RE.search(line) \
                and not allowed_near("sched-scan", raw, i, 3, 2):
            yield Finding(path, i + 1, "sched-scan",
                          "per-cycle iteration over snapshot.queries in "
                          "policy code; maintain an incremental index "
                          "(sched/fcfs_policy.cc, klink/klink_policy.cc) "
                          "or add an allow pragma justifying the scan")


def check_status_nodiscard(path, raw, code):
    if path != "src/common/status.h":
        return
    text = "\n".join(code)
    for cls in ("Status", "StatusOr"):
        if not re.search(rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
            yield Finding(path, 1, "status-discard",
                          f"class {cls} must stay [[nodiscard]] so the "
                          "compiler rejects unchecked Status discards")


NEW_RE = re.compile(r"\bnew\b\s*[\(A-Za-z_:]")
DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?\s*[\(A-Za-z_:*]")
DELETED_FN_RE = re.compile(r"=\s*delete\s*[;,)]")


def check_raw_new_delete(path, raw, code):
    if not (path.startswith("src/") or path.startswith("tools/")):
        return
    for i, line in enumerate(code):
        if DELETED_FN_RE.search(line):
            line = DELETED_FN_RE.sub("", line)
        if (NEW_RE.search(line) or DELETE_RE.search(line)) \
                and not allowed("raw-new-delete", raw, i):
            yield Finding(path, i + 1, "raw-new-delete",
                          "raw new/delete; own memory with std::unique_ptr "
                          "or a container")


def check_include_guard(path, raw, code):
    if not path.startswith("src/") or not path.endswith(".h"):
        return
    want = path[len("src/"):]
    guard = "KLINK_" + re.sub(r"[/.]", "_", want).upper() + "_"
    text = "\n".join(code)
    if (f"#ifndef {guard}" not in text) or (f"#define {guard}" not in text):
        yield Finding(path, 1, "include-guard",
                      f"header guard must be {guard}")


# std symbol -> required direct include. Only unambiguous mappings: a header
# that names the symbol must include the header that defines it.
IWYU_SYMBOLS = {
    r"\bstd::vector\s*<": "<vector>",
    r"\bstd::string\b": "<string>",
    r"\bstd::(unique_ptr|shared_ptr|make_unique|make_shared)\b": "<memory>",
    r"\bstd::map\s*<": "<map>",
    r"\bstd::unordered_map\s*<": "<unordered_map>",
    r"\bstd::deque\s*<": "<deque>",
    r"\bstd::array\s*<": "<array>",
    r"\bstd::optional\s*<": "<optional>",
    r"\bstd::function\s*<": "<functional>",
    r"\bstd::atomic\b": "<atomic>",
    r"\bstd::mutex\b|\bstd::lock_guard\b|\bstd::unique_lock\b": "<mutex>",
    r"\bstd::thread\b": "<thread>",
    r"\bstd::condition_variable\b": "<condition_variable>",
    r"\bstd::(u?int(8|16|32|64)_t)\b|\b(u?int(8|16|32|64)_t)\{": "<cstdint>",
}


def check_iwyu(path, raw, code):
    if not path.startswith("src/") or not path.endswith(".h"):
        return
    text = "\n".join(code)
    includes = set(re.findall(r'#include\s+([<"][^">]+[">])', text))
    direct = {inc for inc in includes if inc.startswith("<")}
    for pat, header in IWYU_SYMBOLS.items():
        m = re.search(pat, text)
        if m is None:
            continue
        if header not in direct:
            line = text[:m.start()].count("\n") + 1
            if not allowed("iwyu", raw, line - 1):
                yield Finding(path, line, "iwyu",
                              f"uses {m.group(0).strip()} but does not "
                              f"directly include {header}")


EVENT_KIND_SWITCH_RE = re.compile(
    r"switch\s*\(\s*[^)]*(\bkind\b|\bEventKind\b|(\.|->)\s*kind\s*\(\))")
DEFAULT_ARM_RE = re.compile(r"\bdefault\s*:")


def check_event_kind_switch(path, raw, code):
    # EventKind switches must stay exhaustive: -Wswitch (an error here)
    # then flags every decode/route/merge site when a kind is added. A
    # `default:` arm defeats that and silently drops unknown kinds.
    if not (path.startswith("src/") or path.startswith("tools/")
            or path.startswith("bench/")):
        return
    i = 0
    n = len(code)
    while i < n:
        m = EVENT_KIND_SWITCH_RE.search(code[i])
        if m is None:
            i += 1
            continue
        # Walk the switch body by brace depth, starting from the first `{`
        # at or after the switch line.
        depth = 0
        entered = False
        j = i
        while j < n:
            for c in code[j]:
                if c == "{":
                    depth += 1
                    entered = True
                elif c == "}":
                    depth -= 1
            if entered:
                dm = DEFAULT_ARM_RE.search(code[j])
                if dm and not allowed_near("event-kind-switch", raw, j, 2, 1):
                    yield Finding(
                        path, j + 1, "event-kind-switch",
                        "default: arm in an EventKind switch; enumerate "
                        "every kind so -Wswitch flags this site when a "
                        "kind is added (see src/event/event.h)")
                if depth <= 0:
                    break
            j += 1
        i = max(i + 1, j)
    return


def check_relaxed_atomics(path, raw, code):
    # Relaxed ordering is a per-site proof obligation, not a default: it is
    # sound only when the surrounding protocol supplies the ordering (the
    # executor's cycle barrier, a test-only monotonic flag). The pragma
    # reason is where that proof lives.
    if not path.startswith("src/"):
        return
    for i, line in enumerate(code):
        if "memory_order_relaxed" in line \
                and not allowed_near("relaxed-atomics", raw, i, 3, 0):
            yield Finding(path, i + 1, "relaxed-atomics",
                          "memory_order_relaxed without an audit pragma; "
                          "state the invariant that supplies the ordering "
                          "(// klink-lint: allow(relaxed-atomics): <why>) "
                          "or use acquire/release")


# ---------------------------------------------------------------------------
# Lexical C++ scope model shared by the concurrency rules (lock-order,
# guarded-by). parse_functions() brace-matches a comment/string-stripped
# file into class regions and function bodies; the rules then walk bodies
# tracking MutexLock scopes by brace depth. Deliberately an approximation —
# clang -Wthread-safety is the exact checker — but precise enough to be
# zero-noise on this codebase, and it runs everywhere GCC does.

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "return",
    "case", "default", "sizeof", "alignof", "decltype", "new", "delete",
}


class FuncScope:
    __slots__ = ("cls", "name", "sig", "line", "end")

    def __init__(self, cls, name, sig, line):
        self.cls = cls    # enclosing/qualifying class name, or None
        self.name = name  # unqualified name ("~X" for a destructor)
        self.sig = sig    # signature text up to the opening brace
        self.line = line  # 0-based line of the opening '{'
        self.end = line   # 0-based line of the closing '}'


def _classify_scope(sig, in_func):
    """Classifies the text before a '{': ('class', name) | ('func',
    (qualifier, name, sig)) | ('block', None)."""
    sig = sig.replace("\n", " ")
    bare = re.sub(r"KLINK_\w+\s*(\([^()]*\))?", " ", sig).strip()
    if not bare:
        return "block", None
    m = re.search(r"\b(class|struct|union|enum)\b", bare)
    if m is not None and "(" not in bare[:m.start()]:
        nm = re.search(
            r"\b(?:class|struct|union|enum)\s+(?:class\s+|struct\s+)?"
            r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{]*)?$", bare)
        if nm is not None:
            return "class", nm.group(1)
    if re.match(r"(namespace|extern)\b", bare):
        return "block", None
    p = bare.find("(")
    if p < 0 or in_func:
        return "block", None
    stripped = bare.rstrip()
    if stripped.endswith(("=", "]")) or "](" in bare.replace(" ", ""):
        return "block", None  # braced init / lambda, not a definition
    head = bare[:p].rstrip()
    nm = re.search(r"(?:([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)$", head)
    if nm is None or nm.group(2).lstrip("~") in CONTROL_KEYWORDS:
        return "block", None
    return "func", (nm.group(1), nm.group(2), sig.strip())


def parse_functions(code):
    """Returns (funcs, classes): top-level function bodies as FuncScope and
    class regions as (name, first_line, last_line) over stripped lines."""
    lines = ["" if l.lstrip().startswith("#") else l for l in code]
    funcs, classes = [], []
    class_stack = []  # (depth, name)
    scopes = []       # one ('kind', meta, open_line) per open '{'
    func_stack = []
    depth = 0
    line = 0
    stmt = []
    for ch in "\n".join(lines):
        if ch == "\n":
            line += 1
            ch = " "
        if ch == ";":
            stmt = []
        elif ch == "{":
            kind, meta = _classify_scope("".join(stmt), bool(func_stack))
            if kind == "class" and not func_stack:
                class_stack.append((depth, meta))
                scopes.append(("class", meta, line))
            elif kind == "func" and not func_stack:
                qual, name, sig = meta
                cls = qual or (class_stack[-1][1] if class_stack else None)
                fn = FuncScope(cls, name, sig, line)
                func_stack.append(fn)
                scopes.append(("func", fn, line))
            else:
                scopes.append(("block", None, line))
            depth += 1
            stmt = []
        elif ch == "}":
            depth -= 1
            if scopes:
                kind, meta, l0 = scopes.pop()
                if kind == "class":
                    class_stack.pop()
                    classes.append((meta, l0, line))
                elif kind == "func":
                    meta.end = line
                    funcs.append(meta)
                    func_stack.pop()
            stmt = []
        else:
            stmt.append(ch)
    return funcs, classes


def _resolve(cls, expr):
    """Canonical lock-graph node for a mutex expression at a use site."""
    expr = re.sub(r"\s+", "", expr)
    expr = re.sub(r"^this->", "", expr)
    if "." in expr or "->" in expr:
        return expr  # a member of some other object: keep the path text
    return f"{cls or '<file>'}::{expr}"


def _held_on_entry(sig, cls):
    """Mutex nodes a function may assume held, per its annotations."""
    out = set()
    for m in re.finditer(r"KLINK_(?:REQUIRES|ACQUIRE)(?:_SHARED)?"
                         r"\s*\(([^)]*)\)", sig):
        for a in m.group(1).split(","):
            a = a.strip()
            if a and not a.startswith("!"):
                out.add(_resolve(cls, a))
    return out


LOCK_EVENT_RE = re.compile(
    r"\bMutexLock\s+([A-Za-z_]\w*)\s*[({]\s*&\s*"
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)"
    r"|\b([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*"
    r"(?:\.|->)\s*(Lock|Unlock|Relock)\s*\(\s*\)")

FIELD_GUARD_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s+KLINK_(?:PT_)?GUARDED_BY\s*\(\s*([^)]+?)\s*\)")

DECL_ORDER_RE = re.compile(
    r"\bMutex\s+([A-Za-z_]\w*)[^;]*"
    r"KLINK_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")


class ConcurrencyModel:
    """Whole-tree aggregate for the lock-order and guarded-by rules: field
    guards may be declared in a header while the violating method body
    lives in the .cc, and a lock-order cycle may span files, so both rules
    run after every file has been scanned."""

    # The annotation/instrumentation substrate itself manipulates the raw
    # std primitives by design; its safety argument is its own doc comment.
    EXCLUDED = {"src/common/thread_annotations.h"}

    def __init__(self):
        self.files = {}        # path -> (funcs, raw, code)
        self.fields = {}       # cls -> {field: (node, path, line)}
        self.edges = []        # (holder, acquired, path, 0-based line)

    def add_file(self, path, raw, code):
        if not path.startswith("src/") or path in self.EXCLUDED:
            return
        text = "\n".join(code)
        if not re.search(r"\bMutexLock\b|KLINK_GUARDED_BY|KLINK_PT_GUARDED"
                         r"|KLINK_ACQUIRED_|\bMutex\b", text):
            return
        funcs, classes = parse_functions(code)
        self.files[path] = (funcs, raw, code)
        for i, line in enumerate(code):
            if any(f.line <= i <= f.end for f in funcs):
                continue  # declarations only; bodies are walked later
            cls = self._innermost(classes, i)
            for m in FIELD_GUARD_RE.finditer(line):
                field, mu = m.group(1), m.group(2)
                self.fields.setdefault(cls, {})[field] = \
                    (_resolve(cls, mu), path, i)
            dm = DECL_ORDER_RE.search(line)
            if dm is not None and not allowed("lock-order", raw, i):
                this_node = _resolve(cls, dm.group(1))
                for other in dm.group(3).split(","):
                    other = other.strip()
                    if not other:
                        continue
                    pair = (this_node, _resolve(cls, other))
                    if dm.group(2) == "AFTER":
                        pair = (pair[1], pair[0])
                    self.edges.append((*pair, path, i))

    @staticmethod
    def _innermost(classes, line):
        best = None
        for name, l0, l1 in classes:
            if l0 <= line <= l1 and (best is None or l0 > best[1]):
                best = (name, l0)
        return best[0] if best else None

    def _walk(self, path, fn, raw, code):
        """Walks one function body. Returns {0-based line: held node set}
        and appends lock-order edges discovered along the way."""
        entry = _held_on_entry(fn.sig, fn.cls)
        held = []       # [{node, var, mu, depth}] in acquisition order
        lock_vars = {}  # MutexLock var -> node, for Relock() after Unlock()
        depth = 0
        held_lines = {}
        for ln in range(fn.line, min(fn.end, len(code) - 1) + 1):
            text = code[ln]
            before = {h["node"] for h in held} | entry
            events = [(m.start(), m) for m in LOCK_EVENT_RE.finditer(text)]
            events += [(m.start(), m.group(0))
                       for m in re.finditer(r"[{}]", text)]
            for _, ev in sorted(events, key=lambda e: e[0]):
                if ev == "{":
                    depth += 1
                elif ev == "}":
                    depth -= 1
                    held = [h for h in held if h["depth"] <= depth]
                else:
                    lockvar, mu, obj, op = ev.group(1, 2, 3, 4)
                    if lockvar is not None:
                        self._acquire(path, ln, raw, fn, held, entry,
                                      _resolve(fn.cls, mu), lockvar,
                                      re.sub(r"\s+", "", mu), depth)
                        lock_vars[lockvar] = _resolve(fn.cls, mu)
                    elif op == "Lock":
                        self._acquire(path, ln, raw, fn, held, entry,
                                      _resolve(fn.cls, obj), None,
                                      re.sub(r"\s+", "", obj), depth)
                    elif op == "Unlock":
                        for h in reversed(held):
                            if obj in (h["var"], h["mu"]):
                                held.remove(h)
                                break
                    elif op == "Relock" and obj in lock_vars:
                        self._acquire(path, ln, raw, fn, held, entry,
                                      lock_vars[obj], obj, None, depth)
            held_lines[ln] = before | {h["node"] for h in held} | entry
        return held_lines

    def _acquire(self, path, ln, raw, fn, held, entry, node, var, mu,
                 depth):
        if not allowed("lock-order", raw, ln):
            for holder in sorted({h["node"] for h in held} | entry):
                if holder != node:
                    self.edges.append((holder, node, path, ln))
        held.append({"node": node, "var": var, "mu": mu, "depth": depth})

    def findings(self):
        out = []
        for path in sorted(self.files):
            funcs, raw, code = self.files[path]
            for fn in funcs:
                held_lines = self._walk(path, fn, raw, code)
                out.extend(self._check_guarded(path, fn, raw, code,
                                               held_lines))
        out.extend(self._check_cycles())
        return out

    def _check_guarded(self, path, fn, raw, code, held_lines):
        guards = self.fields.get(fn.cls)
        if not guards:
            return
        # Mirror clang: constructors/destructors run before/after sharing,
        # and NO_THREAD_SAFETY_ANALYSIS opts a function out entirely.
        if fn.name in (fn.cls, f"~{fn.cls}") \
                or "KLINK_NO_THREAD_SAFETY_ANALYSIS" in fn.sig:
            return
        for ln in range(fn.line, min(fn.end, len(code) - 1) + 1):
            for field, (node, dpath, dline) in sorted(guards.items()):
                if not re.search(rf"\b{field}\b", code[ln]):
                    continue
                if node in held_lines.get(ln, set()):
                    continue
                if allowed("guarded-by", raw, ln):
                    continue
                yield Finding(
                    path, ln + 1, "guarded-by",
                    f"{fn.cls}::{field} is KLINK_GUARDED_BY"
                    f"({node.split('::')[-1]}) ({dpath}:{dline + 1}) but "
                    f"{fn.name}() touches it without the lock held; take "
                    "a MutexLock, annotate the function KLINK_REQUIRES, "
                    "or justify with an allow pragma")

    def _check_cycles(self):
        adj, sites = {}, {}
        for holder, node, path, ln in self.edges:
            adj.setdefault(holder, set()).add(node)
            sites.setdefault((holder, node), (path, ln + 1))
        seen = set()
        for start in sorted(adj):
            cycle = self._find_cycle(adj, start)
            if cycle is None:
                continue
            # Normalize: rotate so the smallest node leads, dedup.
            k = cycle.index(min(cycle))
            cycle = cycle[k:] + cycle[:k]
            if tuple(cycle) in seen:
                continue
            seen.add(tuple(cycle))
            hops = []
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                p, l = sites[(a, b)]
                hops.append(f"{a} -> {b} ({p}:{l})")
            path, line = sites[(cycle[0], cycle[1 % len(cycle)])]
            yield Finding(
                path, line, "lock-order",
                "lock-order cycle (deadlock one schedule away): "
                + "; ".join(hops))

    @staticmethod
    def _find_cycle(adj, start):
        """First cycle reachable from `start` (DFS, sorted adjacency)."""
        stack, on_path = [(start, iter(sorted(adj.get(start, ()))))], [start]
        visited = {start}
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt in on_path:
                    return on_path[on_path.index(nxt):]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    on_path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.pop()
        return None


# ---------------------------------------------------------------------------
# Optional libclang AST mode. When the clang.cindex bindings are present
# the weakest lexical rules are re-run on the real AST: raw-new-delete via
# CXX_NEW_EXPR/CXX_DELETE_EXPR cursors (deleted functions and prose can no
# longer confuse it) and event-kind-switch via SWITCH_STMT condition types
# (a renamed local no longer dodges the check). Everything else stays
# lexical — the concurrency rules are superseded by clang -Wthread-safety
# itself when a clang build is available.

AST_RULES = {"raw-new-delete", "event-kind-switch"}


class ClangAst:
    def __init__(self, repo, mode, compile_commands):
        self.repo = repo
        self.enabled = False
        self.note = None
        self.args_by_file = {}
        if mode == "off":
            return
        try:
            from clang import cindex  # noqa: provided by python3-clang
            self.cindex = cindex
            self.index = cindex.Index.create()
            self.enabled = True
        except Exception as e:  # ImportError or missing libclang .so
            if mode == "on":
                raise SystemExit(
                    f"klink_lint: --ast=on but libclang is unusable ({e}); "
                    "install python3-clang/libclang or drop to --ast=auto")
            why = type(e).__name__
            self.note = (f"klink_lint: libclang unavailable ({why}); AST "
                         "checks fall back to the lexical implementations")
            return
        if compile_commands and os.path.exists(compile_commands):
            try:
                with open(compile_commands, encoding="utf-8") as f:
                    for entry in json.load(f):
                        args = entry.get("arguments") or \
                            entry["command"].split()
                        self.args_by_file[entry["file"]] = [
                            a for a in args[1:]
                            if a not in ("-c", "-o", entry["file"])
                            and not a.endswith(".o")]
            except Exception:
                pass  # fall back to default args per file

    def findings_for(self, path, raw):
        """AST findings for the rules in AST_RULES, or None when the file
        cannot be parsed (caller then runs the lexical versions)."""
        full = os.path.join(self.repo, path)
        try:
            args = self.args_by_file.get(full) or \
                ["-std=c++20", f"-I{self.repo}", "-xc++"]
            tu = self.index.parse(full, args=args)
            if any(d.severity >= self.cindex.Diagnostic.Fatal
                   for d in tu.diagnostics):
                return None
            out = []
            ck = self.cindex.CursorKind
            for cur in tu.cursor.walk_preorder():
                loc = cur.location
                if loc.file is None or loc.file.name != full:
                    continue
                if cur.kind in (ck.CXX_NEW_EXPR, ck.CXX_DELETE_EXPR):
                    if not allowed("raw-new-delete", raw, loc.line - 1):
                        out.append(Finding(
                            path, loc.line, "raw-new-delete",
                            "raw new/delete; own memory with "
                            "std::unique_ptr or a container"))
                elif cur.kind == ck.SWITCH_STMT:
                    out.extend(self._switch(path, raw, cur, ck))
            return out
        except Exception:
            return None  # any binding hiccup: lexical fallback

    @staticmethod
    def _switch(path, raw, cur, ck):
        kids = list(cur.get_children())
        if not kids or "EventKind" not in kids[0].type.spelling:
            return
        for sub in cur.walk_preorder():
            if sub.kind == ck.DEFAULT_STMT:
                line = sub.location.line
                if not allowed_near("event-kind-switch", raw, line - 1,
                                    2, 1):
                    yield Finding(
                        path, line, "event-kind-switch",
                        "default: arm in an EventKind switch; enumerate "
                        "every kind so -Wswitch flags this site when a "
                        "kind is added (see src/event/event.h)")


RULES = [
    check_determinism,
    check_accounting,
    check_sched_scan,
    check_status_nodiscard,
    check_raw_new_delete,
    check_include_guard,
    check_iwyu,
    check_event_kind_switch,
    check_relaxed_atomics,
]


def lint_file(repo, path, model=None, ast=None):
    try:
        with open(os.path.join(repo, path), encoding="utf-8") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]
    code = strip_code(raw)
    findings = []
    ast_findings = None
    if ast is not None and ast.enabled \
            and (path.startswith("src/") or path.startswith("tools/")):
        ast_findings = ast.findings_for(path, raw)
    for rule in RULES:
        if ast_findings is not None and rule.__name__ in (
                "check_raw_new_delete", "check_event_kind_switch"):
            continue  # superseded by the AST versions this run
        findings.extend(rule(path, raw, code) or [])
    if ast_findings is not None:
        findings.extend(ast_findings)
    if model is not None:
        model.add_file(path, raw, code)
    return findings


def lint_paths(repo, files, ast=None):
    """All findings for `files`: the per-file rules plus the whole-tree
    concurrency rules. The entry point the golden tests replay."""
    model = ConcurrencyModel()
    findings = []
    for path in files:
        findings.extend(lint_file(repo, path, model, ast))
    findings.extend(model.findings())
    return findings


# ---------------------------------------------------------------------------
# clang-tidy driver (optional; the .clang-tidy profile holds the check list)

def run_clang_tidy(exe, repo, compile_commands, files):
    ccs = [f for f in files if f.endswith((".cc", ".cpp"))
           and (f.startswith("src/") or f.startswith("tools/"))]
    if not ccs:
        return 0
    build_dir = os.path.dirname(compile_commands)
    failures = 0

    def one(path):
        proc = subprocess.run(
            [exe, "-p", build_dir, "--quiet", path],
            cwd=repo, capture_output=True, text=True)
        return path, proc.returncode, proc.stdout.strip()

    with concurrent.futures.ThreadPoolExecutor(
            max_workers=os.cpu_count() or 4) as pool:
        for path, rc, out in pool.map(one, ccs):
            if rc != 0 or "warning:" in out or "error:" in out:
                failures += 1
                print(f"-- clang-tidy: {path}")
                if out:
                    print(out)
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--changed", action="store_true",
                    help="lint only files that differ from origin/main")
    ap.add_argument("--ast", choices=("auto", "on", "off"), default="auto",
                    help="libclang-backed AST checks: auto uses libclang "
                         "when importable, on requires it, off never "
                         "loads it")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy executable to run over the same files")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for clang-tidy")
    ap.add_argument("files", nargs="*",
                    help="explicit files (repo-relative); default: the tree")
    args = ap.parse_args()

    repo = os.path.abspath(args.repo)
    if args.files:
        files = args.files
    elif args.changed:
        files = changed_files(repo)
    else:
        files = repo_files(repo, ["src", "tools", "tests", "bench",
                                  "examples"])

    cc_path = args.compile_commands or os.path.join(
        repo, "build", "compile_commands.json")
    ast = ClangAst(repo, args.ast, cc_path)
    if ast.note:
        print(ast.note, file=sys.stderr)

    findings = lint_paths(repo, files, ast)
    for f in findings:
        print(f)

    tidy_failures = 0
    if args.clang_tidy:
        cc = args.compile_commands or os.path.join(
            repo, "build", "compile_commands.json")
        if not os.path.exists(cc):
            print(f"klink_lint: no compilation database at {cc}; "
                  "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON",
                  file=sys.stderr)
            return 2
        tidy_failures = run_clang_tidy(args.clang_tidy, repo, cc, files)

    total = len(findings) + tidy_failures
    print(f"klink_lint: {len(files)} files, {len(findings)} lint finding(s)"
          + (f", {tidy_failures} clang-tidy file failure(s)"
             if args.clang_tidy else ""))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
