#!/usr/bin/env python3
"""Repo-local lint for Klink: the correctness rules generic tooling can't see.

Klink's scheduling decisions are driven by exact bookkeeping — watermark
monotonicity, SWM epoch ordering, per-query byte accounting (PAPER.md
Sec. 3) — and the engine replays byte-identically across executor backends.
That contract is easy to break silently: one wall-clock read in a policy, one
counter mutated behind the MemoryDeltaSink's back. These rules make the
contract mechanical:

  determinism     src/ (outside src/harness/) must not read wall clocks or
                  non-seeded randomness. The engine runs on virtual time;
                  the harness and the real-socket net paths are the only
                  places real time may enter, and the latter need an
                  explicit allow pragma.
  accounting      The incremental byte counters (Operator::state_bytes_,
                  Query::memory_bytes_, StreamQueue::bytes_/data_count_) may
                  only be mutated by their owning accounting methods. Any
                  other mutation bypasses the MemoryDeltaSink chain and
                  desynchronizes Query::MemoryBytes() from reality.
  sched-scan      Policy code (src/sched/, src/klink/) must not iterate the
                  full snapshot per scheduling cycle — steady-state work is
                  O(touched) via the incremental indexes. Rebuild cycles,
                  audits, and by-definition full-scan baselines carry an
                  allow pragma stating why the scan is legitimate.
  status-discard  common/status.h must keep Status/StatusOr [[nodiscard]]
                  (the compiler then enforces no-unchecked-Status repo-wide).
  raw-new-delete  No raw new/delete expressions; ownership goes through
                  std::unique_ptr / containers.
  include-guard   Headers carry the canonical KLINK_<PATH>_H_ guard.
  iwyu            Headers directly include the std headers whose symbols
                  they name (a deterministic include-what-you-use subset
                  for the public headers; no compiler needed).
  event-kind-switch
                  Switches over EventKind must enumerate every kind, with
                  no `default:` arm. The repo compiles with -Wswitch as an
                  error, so an exhaustive switch turns every future kind
                  addition (e.g. kRetraction/kUpdate for allowed lateness)
                  into a compile error at each decode/route/merge site; a
                  `default:` silently swallows the new kind instead — the
                  exact bug class the wire decoder and exchange merge must
                  never have.

Suppression: append `// klink-lint: allow(<rule>): <reason>` to the line,
or put it on the line directly above.

Usage:
  tools/klink_lint.py [--repo DIR] [--changed] [--clang-tidy EXE]
                      [--compile-commands PATH] [files...]

Exit status is non-zero when any finding (or clang-tidy diagnostic) is
reported. Run via `cmake --build build --target lint`.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys

# ---------------------------------------------------------------------------
# File collection

CXX_EXTENSIONS = (".h", ".cc", ".cpp")


def repo_files(repo, subdirs):
    out = []
    for sub in subdirs:
        base = os.path.join(repo, sub)
        for root, dirs, names in os.walk(base):
            dirs[:] = sorted(d for d in dirs if not d.startswith("build"))
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    out.append(os.path.relpath(os.path.join(root, name), repo))
    return out


def changed_files(repo):
    """Files differing from the merge base with origin/main (or HEAD~1)."""
    for base in ("origin/main", "main", "HEAD~1"):
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
            cwd=repo, capture_output=True, text=True)
        if proc.returncode == 0:
            return [f for f in proc.stdout.splitlines()
                    if f.endswith(CXX_EXTENSIONS)]
    return []


# ---------------------------------------------------------------------------
# Lexical preprocessing: strip comments and string/char literals so token
# rules never fire on prose. Line-oriented; tracks /* */ across lines.

def strip_code(lines):
    """Returns lines with comments and literal contents blanked out."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                res.append(quote)
                i += 1
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


# ---------------------------------------------------------------------------
# Rules

class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


ALLOW_RE = re.compile(r"klink-lint:\s*allow\(([a-z-]+)\)")


def allowed(rule, raw_lines, idx):
    """True if line idx (0-based) or the line above carries an allow pragma."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(raw_lines[j])
        if m and m.group(1) == rule:
            return True
    return False


DETERMINISM_PATTERNS = [
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time()"),
    (re.compile(r"\b(localtime|mktime|gmtime)\s*\("), "calendar time"),
]


def check_determinism(path, raw, code):
    # Virtual-time engine: real time may enter only through the harness
    # (which owns wall-clock measurement) or an explicitly allowed site.
    if not path.startswith("src/") or path.startswith("src/harness/"):
        return
    for i, line in enumerate(code):
        for pat, what in DETERMINISM_PATTERNS:
            if pat.search(line) and not allowed("determinism", raw, i):
                yield Finding(path, i + 1, "determinism",
                              f"{what} in the virtual-time engine; real time "
                              "belongs in src/harness/ (or add an allow "
                              "pragma with a reason)")


# Counter -> the only files allowed to mutate it (the accounting methods).
ACCOUNTING_OWNERS = {
    "state_bytes_": {"src/operators/operator.h"},
    "memory_bytes_": {"src/query/query.h", "src/query/query.cc"},
    "bytes_": {"src/event/stream_queue.h", "src/event/stream_queue.cc"},
    "data_count_": {"src/event/stream_queue.h", "src/event/stream_queue.cc"},
}
MUTATION_RE = r"(\+\+|--|[+\-*/|&^]=|=(?![=]))"


def check_accounting(path, raw, code):
    if not (path.startswith("src/") or path.startswith("tools/")):
        return
    for counter, owners in ACCOUNTING_OWNERS.items():
        if path in owners:
            continue
        pat = re.compile(
            rf"(\b{counter}\s*{MUTATION_RE}|(\+\+|--)\s*{counter}\b)")
        for i, line in enumerate(code):
            if pat.search(line) and not allowed("accounting", raw, i):
                yield Finding(
                    path, i + 1, "accounting",
                    f"direct mutation of {counter} outside its accounting "
                    f"method bypasses MemoryDeltaSink; use the owner in "
                    f"{sorted(owners)[0]}")


SCHED_SCAN_RE = re.compile(
    r"for\s*\(.*(\.|->)\s*queries\b|(\.|->)\s*queries\s*\[")


def allowed_near(rule, raw_lines, idx, up, down):
    """Like allowed(), but the pragma may sit in the comment block up to
    `up` lines above or `down` lines below (the loop's own body comment)."""
    for j in range(max(0, idx - up), min(len(raw_lines), idx + down + 1)):
        m = ALLOW_RE.search(raw_lines[j])
        if m and m.group(1) == rule:
            return True
    return False


def check_sched_scan(path, raw, code):
    # Steady-state scheduling is O(touched), not O(queries): policy code
    # iterating the full snapshot per cycle reintroduces the linear
    # evaluator the incremental indexes exist to avoid. Legitimate scans
    # (rebuild cycles, audit recomputation, policies that are full-scan by
    # definition) carry an allow pragma stating why.
    if not (path.startswith("src/sched/") or path.startswith("src/klink/")):
        return
    for i, line in enumerate(code):
        if SCHED_SCAN_RE.search(line) \
                and not allowed_near("sched-scan", raw, i, 3, 2):
            yield Finding(path, i + 1, "sched-scan",
                          "per-cycle iteration over snapshot.queries in "
                          "policy code; maintain an incremental index "
                          "(sched/fcfs_policy.cc, klink/klink_policy.cc) "
                          "or add an allow pragma justifying the scan")


def check_status_nodiscard(path, raw, code):
    if path != "src/common/status.h":
        return
    text = "\n".join(code)
    for cls in ("Status", "StatusOr"):
        if not re.search(rf"class\s+\[\[nodiscard\]\]\s+{cls}\b", text):
            yield Finding(path, 1, "status-discard",
                          f"class {cls} must stay [[nodiscard]] so the "
                          "compiler rejects unchecked Status discards")


NEW_RE = re.compile(r"\bnew\b\s*[\(A-Za-z_:]")
DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?\s*[\(A-Za-z_:*]")
DELETED_FN_RE = re.compile(r"=\s*delete\s*[;,)]")


def check_raw_new_delete(path, raw, code):
    if not (path.startswith("src/") or path.startswith("tools/")):
        return
    for i, line in enumerate(code):
        if DELETED_FN_RE.search(line):
            line = DELETED_FN_RE.sub("", line)
        if (NEW_RE.search(line) or DELETE_RE.search(line)) \
                and not allowed("raw-new-delete", raw, i):
            yield Finding(path, i + 1, "raw-new-delete",
                          "raw new/delete; own memory with std::unique_ptr "
                          "or a container")


def check_include_guard(path, raw, code):
    if not path.startswith("src/") or not path.endswith(".h"):
        return
    want = path[len("src/"):]
    guard = "KLINK_" + re.sub(r"[/.]", "_", want).upper() + "_"
    text = "\n".join(code)
    if (f"#ifndef {guard}" not in text) or (f"#define {guard}" not in text):
        yield Finding(path, 1, "include-guard",
                      f"header guard must be {guard}")


# std symbol -> required direct include. Only unambiguous mappings: a header
# that names the symbol must include the header that defines it.
IWYU_SYMBOLS = {
    r"\bstd::vector\s*<": "<vector>",
    r"\bstd::string\b": "<string>",
    r"\bstd::(unique_ptr|shared_ptr|make_unique|make_shared)\b": "<memory>",
    r"\bstd::map\s*<": "<map>",
    r"\bstd::unordered_map\s*<": "<unordered_map>",
    r"\bstd::deque\s*<": "<deque>",
    r"\bstd::array\s*<": "<array>",
    r"\bstd::optional\s*<": "<optional>",
    r"\bstd::function\s*<": "<functional>",
    r"\bstd::atomic\b": "<atomic>",
    r"\bstd::mutex\b|\bstd::lock_guard\b|\bstd::unique_lock\b": "<mutex>",
    r"\bstd::thread\b": "<thread>",
    r"\bstd::condition_variable\b": "<condition_variable>",
    r"\bstd::(u?int(8|16|32|64)_t)\b|\b(u?int(8|16|32|64)_t)\{": "<cstdint>",
}


def check_iwyu(path, raw, code):
    if not path.startswith("src/") or not path.endswith(".h"):
        return
    text = "\n".join(code)
    includes = set(re.findall(r'#include\s+([<"][^">]+[">])', text))
    direct = {inc for inc in includes if inc.startswith("<")}
    for pat, header in IWYU_SYMBOLS.items():
        m = re.search(pat, text)
        if m is None:
            continue
        if header not in direct:
            line = text[:m.start()].count("\n") + 1
            if not allowed("iwyu", raw, line - 1):
                yield Finding(path, line, "iwyu",
                              f"uses {m.group(0).strip()} but does not "
                              f"directly include {header}")


EVENT_KIND_SWITCH_RE = re.compile(
    r"switch\s*\(\s*[^)]*(\bkind\b|\bEventKind\b|(\.|->)\s*kind\s*\(\))")
DEFAULT_ARM_RE = re.compile(r"\bdefault\s*:")


def check_event_kind_switch(path, raw, code):
    # EventKind switches must stay exhaustive: -Wswitch (an error here)
    # then flags every decode/route/merge site when a kind is added. A
    # `default:` arm defeats that and silently drops unknown kinds.
    if not (path.startswith("src/") or path.startswith("tools/")
            or path.startswith("bench/")):
        return
    i = 0
    n = len(code)
    while i < n:
        m = EVENT_KIND_SWITCH_RE.search(code[i])
        if m is None:
            i += 1
            continue
        # Walk the switch body by brace depth, starting from the first `{`
        # at or after the switch line.
        depth = 0
        entered = False
        j = i
        while j < n:
            for c in code[j]:
                if c == "{":
                    depth += 1
                    entered = True
                elif c == "}":
                    depth -= 1
            if entered:
                dm = DEFAULT_ARM_RE.search(code[j])
                if dm and not allowed_near("event-kind-switch", raw, j, 2, 1):
                    yield Finding(
                        path, j + 1, "event-kind-switch",
                        "default: arm in an EventKind switch; enumerate "
                        "every kind so -Wswitch flags this site when a "
                        "kind is added (see src/event/event.h)")
                if depth <= 0:
                    break
            j += 1
        i = max(i + 1, j)
    return


RULES = [
    check_determinism,
    check_accounting,
    check_sched_scan,
    check_status_nodiscard,
    check_raw_new_delete,
    check_include_guard,
    check_iwyu,
    check_event_kind_switch,
]


def lint_file(repo, path):
    try:
        with open(os.path.join(repo, path), encoding="utf-8") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [Finding(path, 0, "io", str(e))]
    code = strip_code(raw)
    findings = []
    for rule in RULES:
        findings.extend(rule(path, raw, code) or [])
    return findings


# ---------------------------------------------------------------------------
# clang-tidy driver (optional; the .clang-tidy profile holds the check list)

def run_clang_tidy(exe, repo, compile_commands, files):
    ccs = [f for f in files if f.endswith((".cc", ".cpp"))
           and (f.startswith("src/") or f.startswith("tools/"))]
    if not ccs:
        return 0
    build_dir = os.path.dirname(compile_commands)
    failures = 0

    def one(path):
        proc = subprocess.run(
            [exe, "-p", build_dir, "--quiet", path],
            cwd=repo, capture_output=True, text=True)
        return path, proc.returncode, proc.stdout.strip()

    with concurrent.futures.ThreadPoolExecutor(
            max_workers=os.cpu_count() or 4) as pool:
        for path, rc, out in pool.map(one, ccs):
            if rc != 0 or "warning:" in out or "error:" in out:
                failures += 1
                print(f"-- clang-tidy: {path}")
                if out:
                    print(out)
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--changed", action="store_true",
                    help="lint only files that differ from origin/main")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy executable to run over the same files")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for clang-tidy")
    ap.add_argument("files", nargs="*",
                    help="explicit files (repo-relative); default: the tree")
    args = ap.parse_args()

    repo = os.path.abspath(args.repo)
    if args.files:
        files = args.files
    elif args.changed:
        files = changed_files(repo)
    else:
        files = repo_files(repo, ["src", "tools", "tests", "bench",
                                  "examples"])

    findings = []
    for path in files:
        findings.extend(lint_file(repo, path))
    for f in findings:
        print(f)

    tidy_failures = 0
    if args.clang_tidy:
        cc = args.compile_commands or os.path.join(
            repo, "build", "compile_commands.json")
        if not os.path.exists(cc):
            print(f"klink_lint: no compilation database at {cc}; "
                  "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON",
                  file=sys.stderr)
            return 2
        tidy_failures = run_clang_tidy(args.clang_tidy, repo, cc, files)

    total = len(findings) + tidy_failures
    print(f"klink_lint: {len(files)} files, {len(findings)} lint finding(s)"
          + (f", {tidy_failures} clang-tidy file failure(s)"
             if args.clang_tidy else ""))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
