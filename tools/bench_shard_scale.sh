#!/usr/bin/env bash
# Measures keyed-aggregation drain throughput vs. shard count and records
# the result in BENCH_shard_scale.json:
#   1. builds micro_shard_scale in Release (-O2 -DNDEBUG),
#   2. runs it on the thread-pool executor: shard counts 1/2/4/8 (plus the
#      unsharded reference) under uniform and Zipf-skewed keys, reporting
#      virtual-time drain throughput (what the scheduling model allocates;
#      host-core-count independent) with wall time alongside,
#   3. checks the acceptance bar: uniform-key throughput at 4 shards is
#      >= 2.5x the 1-shard sharded topology.
#
# Usage: tools/bench_shard_scale.sh [build-dir] [output-json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-release}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_shard_scale.json}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_shard_scale

RAW_TXT="$(mktemp)"
"$BUILD_DIR/bench/micro_shard_scale" --executor=threads | tee "$RAW_TXT"

python3 - "$RAW_TXT" "$OUT_JSON" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
rows = []
with open(raw_path) as f:
    for line in f:
        if not line.startswith("RESULT "):
            continue
        fields = dict(kv.split("=", 1) for kv in line.split()[1:])
        rows.append({
            "key_skew": float(fields["skew"]),
            "shards": int(fields["shards"]),  # 0 = unsharded reference
            "drained_events": int(fields["drained"]),
            "virtual_seconds": float(fields["virtual_seconds"]),
            "throughput_eps": float(fields["throughput_eps"]),
            "wall_ms": float(fields["wall_ms"]),
        })

def tput(skew, shards):
    for r in rows:
        if r["key_skew"] == skew and r["shards"] == shards:
            return r["throughput_eps"]
    raise KeyError((skew, shards))

TARGET = 2.5
speedup_4x = round(tput(0.0, 4) / tput(0.0, 1), 3)
result = {
    "description": "Keyed-aggregation drain throughput vs. shard count "
                   "(see bench/micro_shard_scale.cc); virtual-time "
                   "throughput on the thread-pool executor, uniform and "
                   "Zipf-skewed keys. shards=0 is the unsharded "
                   "reference topology.",
    "rows": rows,
    "uniform_speedup_4_shards_vs_1": speedup_4x,
    "uniform_speedup_8_shards_vs_1": round(tput(0.0, 8) / tput(0.0, 1), 3),
    "speedup_target_4_shards": TARGET,
    "speedup_ok": speedup_4x >= TARGET,
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"4-shard uniform speedup: {speedup_4x}x (target >= {TARGET}x)")
print("shard scale:", "OK" if result["speedup_ok"] else "FAILED")
sys.exit(0 if result["speedup_ok"] else 1)
PY
