// loadgen: TCP workload replayer for a klink_run --listen server. Builds
// the same synthetic YSB/LRB/NYT feeds the in-process harness uses —
// including the paper's artificial network-delay models, now applied as a
// per-connection delay before frames hit the real socket — and streams
// them over the ingest wire protocol, one connection per (query, source).
//
//   klink_run --listen=9099 --workload=ysb --queries=4 &
//   loadgen --port=9099 --workload=ysb --queries=4 --rate=1000
//           --delay=uniform --duration=30 [--speed=1] [--seed=1]
//           [--max-retries=N]
//
// --speed=1 replays in real time (one virtual second per wall second);
// --speed=0 blasts the whole run as fast as TCP accepts it (throughput
// testing against a --lockstep server).
//
// --max-retries=N arms connect/reconnect retries with exponential backoff
// + jitter: a refused initial connect is re-dialed, and a connection lost
// mid-replay (server crash) is re-established with the unacked tail
// replayed from the retention buffer — together with the server-side
// sequence dedup and checkpoint acks this gives exactly-once delivery
// across a server kill + --restore.
//
// Tenant churn (against a klink_run --dynamic-attach server):
// --churn-detach=K makes the first K tenants replay only the first half
// of the run and then send kBye (the server drain-detaches them);
// --churn-attach=K makes the last K tenants delay their first connect by
// --churn-delay-ms of wall time (default 500), so their hello — and the
// server-side live attach it triggers — lands mid-run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/harness/experiment.h"
#include "src/net/delay_model.h"
#include "src/net/ingest_gateway.h"
#include "src/net/loadgen.h"
#include "src/workloads/lrb.h"
#include "src/workloads/nyt.h"
#include "src/workloads/ysb.h"

namespace {

using namespace klink;

int Usage() {
  std::fprintf(
      stderr,
      "usage: loadgen --port=PORT [--host=127.0.0.1]\n"
      "               [--workload=ysb|lrb|nyt] [--queries=N] [--rate=EPS]\n"
      "               [--delay=none|uniform|zipf|pareto] [--duration=SECONDS]\n"
      "               [--delay-pareto=ALPHA,SCALE_MS]\n"
      "               [--speed=X] [--seed=N] [--max-retries=N]\n"
      "               [--key-skew=S]\n"
      "               [--churn-detach=K] [--churn-attach=K]\n"
      "               [--churn-delay-ms=N]\n");
  return 2;
}

struct QueryReplay {
  int query_index = 0;
  std::unique_ptr<EventFeed> feed;
  std::vector<std::unique_ptr<LoadgenConnection>> conns;
  std::vector<uint32_t> stream_ids;
  /// Wall-clock delay before this tenant's first connect (--churn-attach).
  int64_t connect_delay_ms = 0;
  /// Replay elements with ingest_time <= this (--churn-detach halves it).
  TimeMicros until = 0;
  Status result;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc - 1, argv + 1).ok()) return Usage();
  if (flags.Has("help") || !flags.Has("port")) return Usage();

  const std::string host = flags.GetString("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 1));
  const double rate = flags.GetDouble("rate", 1000.0);
  const TimeMicros duration =
      SecondsToMicros(flags.GetInt("duration", 30));
  const double speed = flags.GetDouble("speed", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  RetryPolicy retry;
  retry.max_retries = static_cast<int>(flags.GetInt("max-retries", 0));
  const int churn_detach = static_cast<int>(flags.GetInt("churn-detach", 0));
  const int churn_attach = static_cast<int>(flags.GetInt("churn-attach", 0));
  const int64_t churn_delay_ms = flags.GetInt("churn-delay-ms", 500);
  // Zipf exponent for key draws (0 = uniform); skewed keys concentrate
  // load on one shard of a server-side sharded keyed operator.
  const double key_skew = flags.GetDouble("key-skew", 0.0);
  if (key_skew < 0.0) {
    std::fprintf(stderr, "--key-skew must be >= 0\n");
    return Usage();
  }
  if (churn_detach < 0 || churn_attach < 0 ||
      churn_detach + churn_attach > num_queries) {
    std::fprintf(stderr, "churn tenant counts exceed --queries\n");
    return Usage();
  }

  const std::string workload = flags.GetString("workload", "ysb");
  const std::string delay = flags.GetString("delay", "uniform");
  DelayKind delay_kind = DelayKind::kUniform;
  bool no_delay = false;
  if (delay == "none") {
    no_delay = true;
  } else if (delay == "uniform") {
    delay_kind = DelayKind::kUniform;
  } else if (delay == "zipf") {
    delay_kind = DelayKind::kZipf;
  } else if (delay == "pareto") {
    delay_kind = DelayKind::kPareto;
  } else {
    std::fprintf(stderr, "unknown --delay\n");
    return Usage();
  }
  // --delay-pareto=ALPHA,SCALE_MS overrides the default Pareto shape/scale
  // (implies --delay=pareto): alpha <= 2 gives an infinite-variance tail.
  double pareto_alpha = 0.0, pareto_scale_ms = 0.0;
  const std::string pareto_spec = flags.GetString("delay-pareto", "");
  if (!pareto_spec.empty()) {
    const size_t comma = pareto_spec.find(',');
    if (comma == std::string::npos) {
      std::fprintf(stderr, "--delay-pareto expects ALPHA,SCALE_MS\n");
      return Usage();
    }
    pareto_alpha = std::atof(pareto_spec.substr(0, comma).c_str());
    pareto_scale_ms = std::atof(pareto_spec.substr(comma + 1).c_str());
    if (pareto_alpha <= 0.0 || pareto_scale_ms <= 0.0) {
      std::fprintf(stderr, "--delay-pareto expects positive ALPHA,SCALE_MS\n");
      return Usage();
    }
    delay_kind = DelayKind::kPareto;
    no_delay = false;
  }
  auto make_delay = [&]() -> std::unique_ptr<DelayModel> {
    if (no_delay) return std::make_unique<ConstantDelay>(0);
    if (delay_kind == DelayKind::kPareto && pareto_alpha > 0.0) {
      return std::make_unique<ParetoDelay>(
          MillisToMicros(5), pareto_alpha,
          static_cast<DurationMicros>(pareto_scale_ms * 1000.0));
    }
    return MakeDelayModel(delay_kind);
  };
  const DurationMicros watermark_lag =
      no_delay ? MillisToMicros(50) : WatermarkLagFor(delay_kind);

  // One feed + one connection per source per query; stream ids follow the
  // klink_run --listen convention (MakeStreamId).
  std::vector<QueryReplay> replays(static_cast<size_t>(num_queries));
  Rng rng(seed);
  for (int q = 0; q < num_queries; ++q) {
    QueryReplay& r = replays[static_cast<size_t>(q)];
    r.query_index = q;
    // Churn roles: early-departing tenants replay half the run then send
    // kBye; late-arriving tenants hold their first connect.
    r.until = q < churn_detach ? duration / 2 : duration;
    r.connect_delay_ms =
        q >= num_queries - churn_attach ? churn_delay_ms : 0;
    int num_sources = 1;
    const uint64_t feed_seed = rng.NextUint64();
    if (workload == "ysb") {
      YsbConfig wc;
      wc.events_per_second = rate;
      wc.watermark_lag = watermark_lag;
      wc.key_skew = key_skew;
      r.feed = MakeYsbFeed(wc, make_delay(), feed_seed, 0);
    } else if (workload == "lrb") {
      LrbConfig wc;
      wc.events_per_substream_per_second = rate;
      wc.watermark_lag = watermark_lag;
      wc.key_skew = key_skew;
      r.feed = MakeLrbFeed(wc, make_delay(), feed_seed, 0);
      num_sources = 3;
    } else if (workload == "nyt") {
      NytConfig wc;
      wc.events_per_second = rate;
      wc.watermark_lag = watermark_lag;
      wc.key_skew = key_skew;
      r.feed = MakeNytFeed(wc, make_delay(), feed_seed, 0);
    } else {
      std::fprintf(stderr, "unknown --workload\n");
      return Usage();
    }
    for (int s = 0; s < num_sources; ++s) {
      r.stream_ids.push_back(MakeStreamId(q, s));
      r.conns.push_back(std::make_unique<LoadgenConnection>());
    }
  }

  std::printf("loadgen: %d %s quer%s x %.0f events/s -> %s:%u, %lld s, "
              "%s delay, speed %.2f\n",
              num_queries, workload.c_str(), num_queries == 1 ? "y" : "ies",
              rate, host.c_str(), port,
              static_cast<long long>(duration / 1000000), delay.c_str(),
              speed);

  // Replay queries concurrently (each on its own thread and sockets);
  // pacing applies per query feed. Connects happen on the replay thread so
  // a churn-attach tenant's delayed hello lands while the others stream.
  std::vector<std::thread> threads;
  for (QueryReplay& r : replays) {
    threads.emplace_back([&r, &host, port, speed, retry]() {
      if (r.connect_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(r.connect_delay_ms));
      }
      std::vector<LoadgenConnection*> conns;
      for (size_t s = 0; s < r.conns.size(); ++s) {
        const Status st = r.conns[s]->Connect(host, port, r.stream_ids[s],
                                              retry);
        if (!st.ok()) {
          r.result = st;
          return;
        }
        conns.push_back(r.conns[s].get());
      }
      ReplayOptions opts;
      opts.until = r.until;
      opts.speed = speed;
      opts.reconnect = retry;
      r.result = ReplayFeed(*r.feed, conns, opts);
    });
  }
  for (std::thread& t : threads) t.join();

  int64_t events = 0, frames = 0, bytes = 0;
  int64_t reconnects = 0, replayed = 0, skipped = 0;
  bool failed = false;
  for (const QueryReplay& r : replays) {
    if (!r.result.ok()) {
      std::fprintf(stderr, "query %d replay failed: %s\n", r.query_index,
                   r.result.ToString().c_str());
      failed = true;
    }
    for (const auto& c : r.conns) {
      events += c->stats().data_events_sent;
      frames += c->stats().frames_sent;
      bytes += c->stats().bytes_sent;
      reconnects += c->stats().reconnects;
      replayed += c->stats().replayed_frames;
      skipped += c->stats().skipped_frames;
    }
  }
  std::printf("loadgen: sent %lld data events (%lld frames, %lld bytes)\n",
              static_cast<long long>(events), static_cast<long long>(frames),
              static_cast<long long>(bytes));
  if (reconnects > 0 || skipped > 0) {
    std::printf("loadgen: %lld reconnects, %lld frames replayed, "
                "%lld skipped as already delivered\n",
                static_cast<long long>(reconnects),
                static_cast<long long>(replayed),
                static_cast<long long>(skipped));
  }
  return failed ? 1 : 0;
}
