// klink_run: run one scheduling experiment from the command line without
// writing C++. Wraps the harness in src/harness/experiment.h.
//
//   klink_run --policy=klink --workload=ysb --queries=60 --rate=1000
//             --delay=uniform --duration=120 --warmup=30 --cores=8
//             --memory-mb=16 --seed=1 [--csv=out.csv]
//
// Prints the paper's metrics (mean/tail latency, throughput, slowdown,
// utilization, estimator accuracy, scheduler overhead) for the run.

#include <cstdio>
#include <string>

#include "src/common/flags.h"
#include "src/harness/experiment.h"
#include "src/harness/reporter.h"

namespace {

using namespace klink;

bool ParsePolicy(const std::string& s, PolicyKind* out) {
  static const std::pair<const char*, PolicyKind> kTable[] = {
      {"default", PolicyKind::kDefault},
      {"fcfs", PolicyKind::kFcfs},
      {"rr", PolicyKind::kRoundRobin},
      {"hr", PolicyKind::kHighestRate},
      {"sbox", PolicyKind::kStreamBox},
      {"klink", PolicyKind::kKlink},
      {"klink-nomm", PolicyKind::kKlinkNoMm},
  };
  for (const auto& [name, kind] : kTable) {
    if (s == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseWorkload(const std::string& s, WorkloadKind* out) {
  if (s == "ysb") *out = WorkloadKind::kYsb;
  else if (s == "lrb") *out = WorkloadKind::kLrb;
  else if (s == "nyt") *out = WorkloadKind::kNyt;
  else return false;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: klink_run [--policy=default|fcfs|rr|hr|sbox|klink|klink-nomm]\n"
      "                 [--workload=ysb|lrb|nyt] [--queries=N] [--rate=EPS]\n"
      "                 [--delay=uniform|zipf] [--duration=SECONDS]\n"
      "                 [--warmup=SECONDS] [--cores=N] [--memory-mb=N]\n"
      "                 [--executor=sequential|threads]\n"
      "                 [--confidence=F] [--seed=N] [--csv=PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc - 1, argv + 1).ok()) return Usage();
  if (flags.Has("help")) return Usage();

  ExperimentConfig config;
  if (!ParsePolicy(flags.GetString("policy", "klink"), &config.policy)) {
    std::fprintf(stderr, "unknown --policy\n");
    return Usage();
  }
  if (!ParseWorkload(flags.GetString("workload", "ysb"), &config.workload)) {
    std::fprintf(stderr, "unknown --workload\n");
    return Usage();
  }
  const std::string delay = flags.GetString("delay", "uniform");
  if (delay == "uniform") {
    config.delay = DelayKind::kUniform;
  } else if (delay == "zipf") {
    config.delay = DelayKind::kZipf;
  } else {
    std::fprintf(stderr, "unknown --delay\n");
    return Usage();
  }
  std::string executor_name;
  if (!flags.GetChoice("executor", {"sequential", "threads"}, "sequential",
                       &executor_name)
           .ok() ||
      !ParseExecutorKind(executor_name, &config.engine.executor)) {
    std::fprintf(stderr, "unknown --executor\n");
    return Usage();
  }
  config.num_queries = static_cast<int>(flags.GetInt("queries", 20));
  config.events_per_second = flags.GetDouble("rate", 1000.0);
  config.duration = SecondsToMicros(flags.GetInt("duration", 120));
  config.warmup = SecondsToMicros(flags.GetInt("warmup", 30));
  config.engine.num_cores = static_cast<int>(flags.GetInt("cores", 8));
  config.engine.memory_capacity_bytes = flags.GetInt("memory-mb", 16) << 20;
  config.klink.confidence = flags.GetDouble("confidence", 0.95);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  std::printf("running %s on %s: %d queries x %.0f events/s, %lld s "
              "(%lld s warm-up), %d cores (%s executor), %lld MB, %s delay, "
              "seed %llu\n",
              PolicyKindName(config.policy), WorkloadKindName(config.workload),
              config.num_queries, config.events_per_second,
              static_cast<long long>(config.duration / 1000000),
              static_cast<long long>(config.warmup / 1000000),
              config.engine.num_cores,
              ExecutorKindName(config.engine.executor),
              static_cast<long long>(config.engine.memory_capacity_bytes >>
                                     20),
              DelayKindName(config.delay),
              static_cast<unsigned long long>(config.seed));

  const ExperimentResult r = RunExperiment(config);

  TableReporter table("Results");
  table.SetHeader({"metric", "value"});
  table.AddRow({"mean latency (s)", TableReporter::Num(r.mean_latency_s, 3)});
  table.AddRow({"p50 latency (s)", TableReporter::Num(r.p50_latency_s, 3)});
  table.AddRow({"p90 latency (s)", TableReporter::Num(r.p90_latency_s, 3)});
  table.AddRow({"p99 latency (s)", TableReporter::Num(r.p99_latency_s, 3)});
  table.AddRow({"throughput (op-events/s)",
                TableReporter::Num(r.throughput_eps, 0)});
  table.AddRow({"slowdown", TableReporter::Num(r.slowdown, 0)});
  table.AddRow({"mean CPU (%)",
                TableReporter::Num(r.mean_cpu_utilization * 100.0, 1)});
  table.AddRow({"mean memory (MB)",
                TableReporter::Num(r.mean_memory_bytes / 1048576.0, 1)});
  table.AddRow({"peak memory (MB)",
                TableReporter::Num(
                    static_cast<double>(r.peak_memory_bytes) / 1048576.0, 1)});
  table.AddRow({"scheduler overhead (%)",
                TableReporter::Num(r.scheduler_overhead * 100.0, 3)});
  if (r.estimator_predictions > 0) {
    table.AddRow({"SWM estimation accuracy (%)",
                  TableReporter::Num(r.estimator_accuracy * 100.0, 1)});
  }
  table.Print();

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) {
    std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    return 1;
  }
  return 0;
}
