// klink_run: run one scheduling experiment from the command line without
// writing C++. Wraps the harness in src/harness/experiment.h.
//
//   klink_run --policy=klink --workload=ysb --queries=60 --rate=1000
//             --delay=uniform --duration=120 --warmup=30 --cores=8
//             --memory-mb=16 --seed=1 [--csv=out.csv]
//
// Prints the paper's metrics (mean/tail latency, throughput, slowdown,
// utilization, estimator accuracy, scheduler overhead) for the run.
//
// With --listen=PORT the engine ingests over real TCP instead of the
// in-process synthetic feeds: it serves the ingest wire protocol on
// 127.0.0.1:PORT (one connection per query source, fed by the loadgen
// tool), maps wall-clock time onto the virtual clock, and prints ingest
// counters next to the usual metrics:
//
//   klink_run --listen=9099 --policy=klink --workload=ysb --queries=4
//             --duration=30 [--ingest-budget-kb=4096] [--lockstep]
//
// --lockstep advances virtual time only through prefixes that have fully
// arrived (per-stream arrival watermarks), making a blast-mode loadgen
// replay deterministic — the networked run produces the same results as
// the equivalent in-process run.
//
// --dynamic-attach turns the closed-world server into a multi-tenant
// fabric: no queries are deployed up front; the first kHello naming a
// stream of tenant q (stream ids follow MakeStreamId, so q = id / 8)
// builds and attaches that tenant's query live, and once all of a
// tenant's streams send kBye the query drain-detaches — queued work,
// including in-flight checkpoint barriers, completes before it retires.
// Tenant indexes still live in [0, --queries), and each tenant's workload
// parameters are drawn from the same seeded rng stream as the static
// server, so attach order (network arrival order) never changes what a
// tenant computes. Per-tenant `results_hash qN` lines are printed so
// churn harnesses can compare survivors across runs.
//
// Fault tolerance (listen mode): --checkpoint-dir=DIR arms barrier
// checkpoints every --checkpoint-interval-ms of virtual time; durable
// epochs are acked to clients so they can trim their replay buffers.
// After a crash, the same command line plus --restore loads the newest
// complete checkpoint, rewinds the gateway's sequence cursors, and
// resumes — reconnecting clients replay their unacked tails and the run
// finishes with the byte-identical results_hash of an uninterrupted run:
//
//   klink_run --listen=9099 --lockstep --checkpoint-dir=/tmp/ck ...
//   <SIGKILL>
//   klink_run --listen=9099 --lockstep --checkpoint-dir=/tmp/ck --restore ...
//
// Sharded execution: --shards=N hash-partitions each query's keyed
// aggregation into N concurrently schedulable shard lanes (--max-shards
// raises the re-shard ceiling above the initial count); results are
// byte-identical to the unsharded run. In listen mode with checkpoints,
// --reshard=COUNT@SECONDS re-partitions every query's keyed state to
// COUNT active shards at the first barrier after the given virtual time —
// while the run keeps going — and --hot-reshard doubles a query's active
// shards automatically when one shard's backlog stays far above the mean.
// A per-shard metrics table prints at the end of listen-mode runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/harness/experiment.h"
#include "src/harness/reporter.h"
#include "src/net/ingest_gateway.h"
#include "src/net/ingest_server.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/engine.h"
#include "src/runtime/reshard.h"
#include "src/workloads/lrb.h"
#include "src/workloads/nyt.h"
#include "src/workloads/ysb.h"

namespace {

using namespace klink;

bool ParsePolicy(const std::string& s, PolicyKind* out) {
  static const std::pair<const char*, PolicyKind> kTable[] = {
      {"default", PolicyKind::kDefault},
      {"fcfs", PolicyKind::kFcfs},
      {"rr", PolicyKind::kRoundRobin},
      {"hr", PolicyKind::kHighestRate},
      {"sbox", PolicyKind::kStreamBox},
      {"klink", PolicyKind::kKlink},
      {"klink-nomm", PolicyKind::kKlinkNoMm},
  };
  for (const auto& [name, kind] : kTable) {
    if (s == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseWorkload(const std::string& s, WorkloadKind* out) {
  if (s == "ysb") *out = WorkloadKind::kYsb;
  else if (s == "lrb") *out = WorkloadKind::kLrb;
  else if (s == "nyt") *out = WorkloadKind::kNyt;
  else return false;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: klink_run [--policy=default|fcfs|rr|hr|sbox|klink|klink-nomm]\n"
      "                 [--workload=ysb|lrb|nyt] [--queries=N] [--rate=EPS]\n"
      "                 [--delay=uniform|zipf|pareto] [--duration=SECONDS]\n"
      "                 [--allowed-lateness-ms=N]\n"
      "                 [--warmup=SECONDS] [--cores=N] [--memory-mb=N]\n"
      "                 [--executor=sequential|threads]\n"
      "                 [--confidence=F] [--seed=N] [--csv=PATH]\n"
      "                 [--shards=N] [--max-shards=N]\n"
      "                 [--listen=PORT [--ingest-budget-kb=N] [--lockstep]\n"
      "                  [--dynamic-attach [--expect-tenants=N]]\n"
      "                  [--checkpoint-dir=DIR [--checkpoint-interval-ms=N]\n"
      "                   [--restore] [--reshard=COUNT@SECONDS]\n"
      "                   [--hot-reshard]]]\n");
  return 2;
}

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Checkpointing options of listen mode (see CheckpointConfig).
struct CheckpointFlags {
  std::string dir;  // empty = checkpointing off
  DurationMicros interval = SecondsToMicros(1);
  bool restore = false;
};

/// Live re-sharding options of listen mode (see ReshardController).
/// --reshard=COUNT@SECONDS re-shards every sharded tenant to COUNT active
/// shards once virtual time passes SECONDS; the trigger re-requests every
/// cycle until each query reaches the target, so a run killed around the
/// re-shard and restarted with --restore converges to the same state no
/// matter which protocol step the newest checkpoint captured.
struct ReshardFlags {
  int target = 0;          // 0 = no explicit re-shard
  TimeMicros at = 0;       // virtual trigger time
  bool hot_trigger = false;  // --hot-reshard: double hot queries' shards
};

/// One tenant of the listen-mode server: a query index in
/// [0, --queries), its deployed (generation-stamped) query id, and the
/// gateway streams feeding its sources.
struct Tenant {
  QueryId id = 0;
  std::vector<uint32_t> streams;
  /// Streams that have seen kBye; the tenant drain-detaches once all have.
  std::set<uint32_t> ended;
  /// All streams ended; detach once the gateway staging drains.
  bool detach_pending = false;
  bool detached = false;
};

/// Serves the ingest protocol and runs the engine against TCP arrivals.
int RunListenMode(const ExperimentConfig& config, uint16_t port,
                  int64_t ingest_budget_bytes, bool lockstep,
                  bool dynamic_attach, int expect_tenants,
                  const CheckpointFlags& ckpt, const ReshardFlags& reshard) {
  KlinkPolicyConfig klink_config = config.klink;
  klink_config.cycle_length = config.engine.cycle_length;
  Engine engine(config.engine, MakePolicy(config.policy, klink_config,
                                          config.seed ^ 0x5eedULL));

  // Same per-tenant workload parameters as the in-process harness (same
  // rng stream), drawn up front for every index: in dynamic-attach mode
  // tenants deploy in network arrival order, which must never perturb
  // another tenant's window offset.
  IngestGateway gateway;
  Rng rng(config.seed);
  std::vector<DurationMicros> window_offsets;
  window_offsets.reserve(static_cast<size_t>(config.num_queries));
  for (int q = 0; q < config.num_queries; ++q) {
    const uint64_t feed_seed = rng.NextUint64();
    (void)feed_seed;  // consumed by the loadgen side
    DurationMicros range = 0;
    switch (config.workload) {
      case WorkloadKind::kYsb: range = YsbConfig{}.window_size; break;
      case WorkloadKind::kLrb: range = LrbConfig{}.join_window; break;
      case WorkloadKind::kNyt: range = NytConfig{}.slide; break;
    }
    window_offsets.push_back(rng.NextInt(0, range - 1));
  }
  auto build_query = [&](int q) {
    std::unique_ptr<Query> query;
    switch (config.workload) {
      case WorkloadKind::kYsb: {
        YsbConfig wc;
        wc.events_per_second = config.events_per_second;
        wc.watermark_lag = WatermarkLagFor(config.delay);
        wc.window_offset = window_offsets[static_cast<size_t>(q)];
        wc.shards = config.shards;
        wc.max_shards = config.max_shards;
        wc.allowed_lateness = config.allowed_lateness;
        query = MakeYsbQuery(q, wc);
        break;
      }
      case WorkloadKind::kLrb: {
        LrbConfig wc;
        wc.events_per_substream_per_second = config.events_per_second;
        wc.watermark_lag = WatermarkLagFor(config.delay);
        wc.window_offset = window_offsets[static_cast<size_t>(q)];
        wc.allowed_lateness = config.allowed_lateness;
        query = MakeLrbQuery(q, wc);
        break;
      }
      case WorkloadKind::kNyt: {
        NytConfig wc;
        wc.events_per_second = config.events_per_second;
        wc.watermark_lag = WatermarkLagFor(config.delay);
        wc.window_offset = window_offsets[static_cast<size_t>(q)];
        wc.shards = config.shards;
        wc.max_shards = config.max_shards;
        wc.allowed_lateness = config.allowed_lateness;
        query = MakeNytQuery(q, wc);
        break;
      }
    }
    return query;
  };

  std::unique_ptr<CheckpointCoordinator> coordinator;
  if (!ckpt.dir.empty()) {
    CheckpointConfig cc;
    cc.dir = ckpt.dir;
    cc.interval = ckpt.interval;
    coordinator = std::make_unique<CheckpointCoordinator>(cc);
  } else if (ckpt.restore) {
    std::fprintf(stderr, "--restore requires --checkpoint-dir\n");
    return 2;
  }

  // Live re-sharding pauses at checkpoint barriers, so the protocol only
  // runs when a coordinator injects them.
  std::unique_ptr<ReshardController> resharder;
  if (reshard.target > 0 || reshard.hot_trigger) {
    if (coordinator == nullptr) {
      std::fprintf(stderr, "--reshard/--hot-reshard require --checkpoint-dir\n");
      return 2;
    }
    resharder = std::make_unique<ReshardController>(&engine);
    if (reshard.hot_trigger) resharder->EnableHotShardTrigger();
    engine.SetReshardController(resharder.get());
  }

  // Tenants keyed by query index (a std::map: the results fingerprint at
  // the end folds in index order, independent of attach order). Indexes
  // are single-use per run — a departed tenant's stats stay readable and
  // its streams' sequence state stays authoritative for late duplicates.
  std::map<int, Tenant> tenants;
  auto attach_tenant = [&](int q) -> bool {
    if (q < 0 || q >= config.num_queries) return false;
    if (tenants.count(q) != 0) return false;
    std::unique_ptr<Query> query = build_query(q);
    Tenant t;
    for (size_t s = 0; s < query->sources().size(); ++s) {
      const uint32_t id = MakeStreamId(q, static_cast<int>(s));
      IngestStreamConfig sc;
      sc.byte_budget = ingest_budget_bytes;
      gateway.RegisterStream(id, sc);
      t.streams.push_back(id);
    }
    auto feed = std::make_unique<NetworkFeed>(&gateway, t.streams);
    t.id = engine.AddQuery(std::move(query), std::move(feed),
                           /*deploy_time=*/engine.now());
    if (coordinator != nullptr) {
      coordinator->RegisterQuery(&engine.query(t.id), t.streams, &gateway);
    }
    tenants.emplace(q, std::move(t));
    return true;
  };
  if (!dynamic_attach) {
    // Closed world: the full query set deploys up front, exactly like the
    // in-process harness.
    for (int q = 0; q < config.num_queries; ++q) {
      KLINK_CHECK(attach_tenant(q));
    }
  }

  // Arm barrier checkpoints (and optionally restore) before serving: the
  // gateway's sequence cursors must be rewound before the first client
  // hello reads them back via HELLO_ACK.
  if (coordinator != nullptr) {
    if (ckpt.restore) {
      LoadedCheckpoint loaded;
      if (LoadLatestCheckpoint(ckpt.dir, &loaded)) {
        for (const LoadedQueryState& qs : loaded.queries) {
          QueryId target = qs.query_id;
          if (dynamic_attach) {
            // Checkpointed tenants re-deploy before serving; the tenant
            // index is recoverable from any cursor's stream id. The fresh
            // attach may stamp a different generation than the captured
            // id, so state restores into the new id.
            KLINK_CHECK(!qs.cursors.empty());
            const int q =
                static_cast<int>(qs.cursors[0].first / kStreamsPerQuery);
            KLINK_CHECK(attach_tenant(q));
            target = tenants.at(q).id;
          }
          RestoreQueryState(qs, &engine.query(target));
          for (const auto& [stream_id, seq] : qs.cursors) {
            gateway.RestoreCursor(stream_id, seq);
          }
        }
        engine.RestoreClock(loaded.checkpoint_time);
        coordinator->ResumeFrom(loaded.epoch, loaded.checkpoint_time);
        std::printf("restored checkpoint epoch %llu (t=%.3f s)\n",
                    static_cast<unsigned long long>(loaded.epoch),
                    MicrosToSeconds(loaded.checkpoint_time));
      } else {
        std::printf("no complete checkpoint in %s; starting fresh\n",
                    ckpt.dir.c_str());
      }
    }
    engine.SetCheckpointCoordinator(coordinator.get());
  }

  IngestServerConfig server_config;
  server_config.port = port;
  server_config.idle_timeout_ms = 60000;
  if (dynamic_attach) {
    server_config.on_unknown_stream = [&](uint32_t stream_id) {
      const int q = static_cast<int>(stream_id / kStreamsPerQuery);
      if (attach_tenant(q)) {
        std::printf("tenant %d attached (query id %llu) at t=%.3f s\n", q,
                    static_cast<unsigned long long>(tenants.at(q).id),
                    MicrosToSeconds(engine.now()));
        std::fflush(stdout);
      }
      // Even after a successful attach the hello's source index may be out
      // of range for this workload; registration truth decides.
      return gateway.HasStream(stream_id);
    };
    server_config.on_stream_end = [&](uint32_t stream_id) {
      const int q = static_cast<int>(stream_id / kStreamsPerQuery);
      const auto it = tenants.find(q);
      if (it == tenants.end() || it->second.detached) return;
      Tenant& t = it->second;
      if (!t.ended.insert(stream_id).second) return;  // repeat kBye
      if (t.ended.size() < t.streams.size()) return;
      // Every stream said goodbye. Don't detach yet: the goodbye raced
      // ahead of virtual time, and elements still staged in the gateway
      // must ingest first or the tenant's results would cut off at
      // whatever instant the kBye happened to arrive (wall-clock
      // dependent). The run loop detaches once staging drains.
      t.detach_pending = true;
    };
  }
  IngestServer server(server_config, &gateway);
  // Detach goodbye'd tenants whose staged elements have all been ingested;
  // called every run-loop iteration. From here the fabric drain takes
  // over: queued work — including in-flight checkpoint barriers — keeps
  // being scheduled until the queues empty, then the query retires.
  auto sweep_detach = [&]() {
    for (auto& [q, t] : tenants) {
      if (!t.detach_pending || t.detached) continue;
      bool staged_empty = true;
      for (const uint32_t sid : t.streams) {
        if (gateway.PeekIngestTime(sid) != kNoTime) {
          staged_empty = false;
          break;
        }
      }
      if (!staged_empty) continue;
      engine.DetachQuery(t.id);
      t.detached = true;
      std::printf("tenant %d detached (query id %llu) at t=%.3f s\n", q,
                  static_cast<unsigned long long>(t.id),
                  MicrosToSeconds(engine.now()));
      std::fflush(stdout);
    }
  };
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (coordinator != nullptr) {
    // Durable-epoch acks become CHECKPOINT_ACK frames on the stream's live
    // connection (a disconnected client catches up via HELLO_ACK instead).
    coordinator->SetAckCallback(
        [&server](uint32_t stream_id, uint64_t epoch, uint64_t durable_seq) {
          server.SendCheckpointAck(stream_id, epoch, durable_seq);
        });
  }
  std::printf("listening on 127.0.0.1:%u (%s mode%s); feed with e.g.\n"
              "  loadgen --port=%u --workload=%s --queries=%d --rate=%.0f "
              "--duration=%lld\n",
              server.port(), lockstep ? "lockstep" : "real-time",
              dynamic_attach ? ", dynamic tenants" : "",
              server.port(), WorkloadKindName(config.workload),
              config.num_queries, config.events_per_second,
              static_cast<long long>(config.duration / 1000000));
  // Harnesses (the kill-mid-run recovery test) read the port and the final
  // results_hash over a pipe; flush so they see the line promptly.
  std::fflush(stdout);

  const DurationMicros cycle = config.engine.cycle_length;
  const int64_t wall_start = WallMicros();
  while (engine.now() < config.duration) {
    if (dynamic_attach) sweep_detach();
    if (resharder != nullptr && reshard.target > 0 &&
        engine.now() >= reshard.at) {
      // Re-request every iteration: RequestReshard refuses (returns false)
      // while a protocol is in flight — including one adopted from a
      // restored checkpoint — and once the query runs at the target, so
      // the trigger converges no matter where a crash interrupted it.
      for (const auto& [q, t] : tenants) {
        if (!t.detached) resharder->RequestReshard(t.id, reshard.target);
      }
    }
    if (lockstep) {
      // Run only through prefixes every live tenant's streams have fully
      // delivered, so results are independent of network timing. Once all
      // clients are gone (finished or died), drain whatever arrived.
      TimeMicros safe = std::numeric_limits<TimeMicros>::max();
      bool any_live_stream = false;
      for (const auto& [q, t] : tenants) {
        if (t.detached) continue;
        for (const uint32_t sid : t.streams) {
          safe = std::min(safe, gateway.StagedThrough(sid));
          any_live_stream = true;
        }
      }
      // --expect-tenants keeps a blast-mode churn run deterministic: until
      // that many tenants have attached, the server neither declares the
      // clients gone nor runs ahead to the end of the run — it holds
      // virtual time and keeps serving, so a delayed tenant's hello still
      // lands inside the run no matter how fast the others blasted.
      const bool all_expected =
          static_cast<int>(tenants.size()) >= expect_tenants;
      const bool clients_done = all_expected &&
                                gateway.metrics().connections_accepted() >
                                    0 &&
                                server.num_connections() == 0;
      if (clients_done) {
        safe = std::numeric_limits<TimeMicros>::max();
      } else if (!all_expected || !any_live_stream) {
        // Expected tenants still missing, or dynamic mode before the
        // first tenant (or between tenants): arrival progress isn't fully
        // bounded yet, so hold virtual time and poll.
        safe = engine.now();
      }
      if (safe >= config.duration) {
        // Final drain, still a cycle per iteration: the detach sweep must
        // keep running so a tenant whose goodbye arrived just before the
        // clients finished retires as soon as its queues drain, not at
        // end-of-run. (RunUntil runs whole cycles either way, so chunking
        // the advance does not change what executes.)
        engine.RunUntil(std::min(config.duration, engine.now() + cycle));
        continue;
      }
      if (engine.now() + cycle <= safe) {
        engine.RunUntil(engine.now() + cycle);
        continue;
      }
      server.PollOnce(10);
    } else {
      // Real time: virtual now tracks the wall clock, so delayed and
      // out-of-order TCP arrivals are genuinely late for the scheduler.
      const TimeMicros elapsed = WallMicros() - wall_start;
      if (elapsed >= config.duration) {
        engine.RunUntil(config.duration);  // final (possibly partial) step
        continue;
      }
      if (engine.now() + cycle <= elapsed) {
        engine.RunUntil(elapsed);
        continue;
      }
      server.PollOnce(
          static_cast<int>((cycle - (elapsed - engine.now())) / 1000 + 1));
    }
  }
  // Lockstep runs drain to empty before reporting. Two runs of the same
  // stream compare byte-identically only over their complete output: a
  // crash + --restore, or a re-shard pausing at a different barrier,
  // legitimately shifts WHEN queued work is absorbed, so cutting the run
  // at a fixed virtual time would fingerprint whatever tail each run
  // happened not to have drained yet.
  if (lockstep) {
    const TimeMicros drain_deadline = engine.now() + SecondsToMicros(60);
    // Count gateway-staged events alongside engine queues: a delayed tail
    // (ingest_time past the current virtual now) is otherwise cut off the
    // moment the engine queues happen to empty, fingerprinting the run.
    const auto pending_total = [&tenants, &engine, &gateway]() {
      int64_t total = 0;
      for (const auto& [q, t] : tenants) {
        if (t.detached) continue;
        total += engine.query(t.id).QueuedEvents();
        for (const uint32_t sid : t.streams) {
          total += gateway.staged_events(sid);
        }
      }
      return total;
    };
    while ((server.num_connections() > 0 || pending_total() > 0) &&
           engine.now() < drain_deadline) {
      if (dynamic_attach) sweep_detach();
      // Paced clients may still be flushing their post-duration delay
      // tail; keep reading so it lands in the drain instead of in flight.
      if (server.num_connections() > 0) server.PollOnce(0);
      engine.RunUntil(engine.now() + cycle);
    }
  }
  server.Stop();

  const Histogram latency = engine.AggregateSwmLatency();
  TableReporter table("Results (TCP ingest)");
  table.SetHeader({"metric", "value"});
  table.AddRow({"mean latency (s)", TableReporter::Num(latency.mean() / 1e6, 3)});
  table.AddRow({"p50 latency (s)",
                TableReporter::Num(
                    static_cast<double>(latency.Percentile(50)) / 1e6, 3)});
  table.AddRow({"p99 latency (s)",
                TableReporter::Num(
                    static_cast<double>(latency.Percentile(99)) / 1e6, 3)});
  table.AddRow({"ingested events",
                std::to_string(engine.metrics().ingested_events())});
  table.AddRow({"throughput (op-events/s)",
                TableReporter::Num(
                    engine.metrics().ThroughputEps(config.duration), 0)});
  table.AddRow({"slowdown", TableReporter::Num(engine.MeanSlowdown(), 0)});
  table.AddRow({"peak memory (MB)",
                TableReporter::Num(
                    static_cast<double>(engine.memory().peak_bytes()) /
                        1048576.0,
                    1)});
  table.Print();
  PrintIngestMetrics(gateway.metrics());
  for (const auto& [q, t] : tenants) PrintShardMetrics(engine, t.id);
  PrintLateEventMetrics(engine);
  if (resharder != nullptr) {
    std::printf("reshards completed %lld\n",
                static_cast<long long>(resharder->completed_reshards()));
  }

  // Order-sensitive fingerprint of every tenant's results, folded in
  // tenant-index order (independent of attach order): two runs (e.g.
  // uninterrupted vs kill + --restore) produced byte-identical outputs iff
  // these lines match. Dynamic mode also prints per-tenant lines so churn
  // harnesses can compare surviving tenants across runs whose tenant sets
  // differ (a pre-checkpoint departure is absent after a restore).
  uint64_t combined = 14695981039346656037ull;
  int64_t results = 0;
  for (const auto& [q, t] : tenants) {
    const SinkOperator& sink = engine.query(t.id).sink();
    uint8_t word[8];
    const uint64_t h = sink.results_hash();
    if (dynamic_attach) {
      std::printf("results_hash q%d %016llx\n", q,
                  static_cast<unsigned long long>(h));
    }
    for (int i = 0; i < 8; ++i) word[i] = static_cast<uint8_t>(h >> (8 * i));
    combined = Fnv1aBytes(word, sizeof(word), combined);
    results += sink.results_received();
  }
  std::printf("results %lld\n", static_cast<long long>(results));
  std::printf("results_hash %016llx\n",
              static_cast<unsigned long long>(combined));
  if (coordinator != nullptr) {
    std::printf("checkpoint durable_epoch %llu\n",
                static_cast<unsigned long long>(
                    coordinator->last_durable_epoch()));
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc - 1, argv + 1).ok()) return Usage();
  if (flags.Has("help")) return Usage();

  ExperimentConfig config;
  if (!ParsePolicy(flags.GetString("policy", "klink"), &config.policy)) {
    std::fprintf(stderr, "unknown --policy\n");
    return Usage();
  }
  if (!ParseWorkload(flags.GetString("workload", "ysb"), &config.workload)) {
    std::fprintf(stderr, "unknown --workload\n");
    return Usage();
  }
  const std::string delay = flags.GetString("delay", "uniform");
  if (delay == "uniform") {
    config.delay = DelayKind::kUniform;
  } else if (delay == "zipf") {
    config.delay = DelayKind::kZipf;
  } else if (delay == "pareto") {
    config.delay = DelayKind::kPareto;
  } else {
    std::fprintf(stderr, "unknown --delay\n");
    return Usage();
  }
  std::string executor_name;
  if (!flags.GetChoice("executor", {"sequential", "threads"}, "sequential",
                       &executor_name)
           .ok() ||
      !ParseExecutorKind(executor_name, &config.engine.executor)) {
    std::fprintf(stderr, "unknown --executor\n");
    return Usage();
  }
  config.num_queries = static_cast<int>(flags.GetInt("queries", 20));
  config.events_per_second = flags.GetDouble("rate", 1000.0);
  config.duration = SecondsToMicros(flags.GetInt("duration", 120));
  config.warmup = SecondsToMicros(flags.GetInt("warmup", 30));
  config.engine.num_cores = static_cast<int>(flags.GetInt("cores", 8));
  config.engine.memory_capacity_bytes = flags.GetInt("memory-mb", 16) << 20;
  config.klink.confidence = flags.GetDouble("confidence", 0.95);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int64_t lateness_ms = flags.GetInt("allowed-lateness-ms", 0);
  if (lateness_ms < 0) {
    std::fprintf(stderr, "--allowed-lateness-ms must be >= 0\n");
    return Usage();
  }
  config.allowed_lateness = MillisToMicros(lateness_ms);
  config.shards = static_cast<int>(flags.GetInt("shards", 1));
  config.max_shards = static_cast<int>(flags.GetInt("max-shards", 0));
  if (config.shards < 1 ||
      (config.max_shards != 0 && config.max_shards < config.shards)) {
    std::fprintf(stderr, "--max-shards must be 0 or >= --shards (>= 1)\n");
    return Usage();
  }

  if (flags.Has("listen")) {
    const uint16_t port = static_cast<uint16_t>(flags.GetInt("listen", 0));
    const int64_t budget = flags.GetInt("ingest-budget-kb", 4096) << 10;
    CheckpointFlags ckpt;
    ckpt.dir = flags.GetString("checkpoint-dir", "");
    ckpt.interval =
        MillisToMicros(flags.GetInt("checkpoint-interval-ms", 1000));
    ckpt.restore = flags.GetBool("restore", false);
    ReshardFlags reshard;
    reshard.hot_trigger = flags.GetBool("hot-reshard", false);
    const std::string reshard_spec = flags.GetString("reshard", "");
    if (!reshard_spec.empty()) {
      const size_t at = reshard_spec.find('@');
      if (at == std::string::npos) {
        std::fprintf(stderr, "--reshard expects COUNT@SECONDS\n");
        return Usage();
      }
      reshard.target = std::atoi(reshard_spec.substr(0, at).c_str());
      reshard.at = static_cast<TimeMicros>(
          std::atof(reshard_spec.substr(at + 1).c_str()) * 1e6);
      if (reshard.target < 1) {
        std::fprintf(stderr, "--reshard expects COUNT >= 1\n");
        return Usage();
      }
    }
    std::printf("serving %s on %s: %d queries, %d cores (%s executor), "
                "%lld MB, seed %llu\n",
                PolicyKindName(config.policy),
                WorkloadKindName(config.workload), config.num_queries,
                config.engine.num_cores,
                ExecutorKindName(config.engine.executor),
                static_cast<long long>(config.engine.memory_capacity_bytes >>
                                       20),
                static_cast<unsigned long long>(config.seed));
    return RunListenMode(config, port, budget,
                         flags.GetBool("lockstep", false),
                         flags.GetBool("dynamic-attach", false),
                         static_cast<int>(flags.GetInt("expect-tenants", 0)),
                         ckpt, reshard);
  }

  std::printf("running %s on %s: %d queries x %.0f events/s, %lld s "
              "(%lld s warm-up), %d cores (%s executor), %lld MB, %s delay, "
              "seed %llu\n",
              PolicyKindName(config.policy), WorkloadKindName(config.workload),
              config.num_queries, config.events_per_second,
              static_cast<long long>(config.duration / 1000000),
              static_cast<long long>(config.warmup / 1000000),
              config.engine.num_cores,
              ExecutorKindName(config.engine.executor),
              static_cast<long long>(config.engine.memory_capacity_bytes >>
                                     20),
              DelayKindName(config.delay),
              static_cast<unsigned long long>(config.seed));

  const ExperimentResult r = RunExperiment(config);

  TableReporter table("Results");
  table.SetHeader({"metric", "value"});
  table.AddRow({"mean latency (s)", TableReporter::Num(r.mean_latency_s, 3)});
  table.AddRow({"p50 latency (s)", TableReporter::Num(r.p50_latency_s, 3)});
  table.AddRow({"p90 latency (s)", TableReporter::Num(r.p90_latency_s, 3)});
  table.AddRow({"p99 latency (s)", TableReporter::Num(r.p99_latency_s, 3)});
  table.AddRow({"throughput (op-events/s)",
                TableReporter::Num(r.throughput_eps, 0)});
  table.AddRow({"slowdown", TableReporter::Num(r.slowdown, 0)});
  table.AddRow({"mean CPU (%)",
                TableReporter::Num(r.mean_cpu_utilization * 100.0, 1)});
  table.AddRow({"mean memory (MB)",
                TableReporter::Num(r.mean_memory_bytes / 1048576.0, 1)});
  table.AddRow({"peak memory (MB)",
                TableReporter::Num(
                    static_cast<double>(r.peak_memory_bytes) / 1048576.0, 1)});
  table.AddRow({"scheduler overhead (%)",
                TableReporter::Num(r.scheduler_overhead * 100.0, 3)});
  if (r.estimator_predictions > 0) {
    table.AddRow({"SWM estimation accuracy (%)",
                  TableReporter::Num(r.estimator_accuracy * 100.0, 1)});
    table.AddRow({"SWM estimation MAE (s)",
                  TableReporter::Num(r.estimator_mae_s, 3)});
  }
  if (config.allowed_lateness > 0) {
    table.AddRow({"late accepted", std::to_string(r.late.late_accepted)});
    table.AddRow({"late dropped (beyond horizon)",
                  std::to_string(r.late.late_dropped_beyond_horizon)});
    table.AddRow({"retractions emitted",
                  std::to_string(r.late.retractions_emitted)});
    table.AddRow({"updates emitted",
                  std::to_string(r.late.updates_emitted)});
  }
  table.Print();

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) {
    std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    return 1;
  }
  return 0;
}
