#!/usr/bin/env bash
# Measures per-cycle scheduler evaluation cost at 100/1k/10k deployed
# queries and records the result in BENCH_scheduler_scale.json:
#   1. builds micro_scheduler_scale in Release (-O2 -DNDEBUG),
#   2. runs the scaling microbenchmarks (full scan vs. incremental heap,
#      FCFS and Klink),
#   3. checks the acceptance bar: the incremental per-cycle cost at 10k
#      queries is <= 3x the 100-query cost for both policies (per-cycle
#      work tracks the touched set, not the deployment size). The
#      full-scan 10k/100 ratio is recorded alongside as the O(n) contrast.
#
# Usage: tools/bench_scheduler_scale.sh [build-dir] [output-json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-release}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_scheduler_scale.json}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_scheduler_scale

RAW_JSON="$(mktemp)"
"$BUILD_DIR/bench/micro_scheduler_scale" \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$RAW_JSON"

python3 - "$RAW_JSON" "$OUT_JSON" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

bench = {b["name"]: b for b in raw["benchmarks"]}

def cpu_ns(name):
    b = bench[name]
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]
    return b["cpu_time"] * scale

def ratio(prefix):
    return round(cpu_ns(f"{prefix}/10000") / cpu_ns(f"{prefix}/100"), 3)

TARGET = 3.0
result = {
    "description": "Per-cycle scheduler evaluation cost vs. deployment "
                   "size (see bench/micro_scheduler_scale.cc); a "
                   "steady-state cycle touches 8 queries regardless of "
                   "how many are deployed.",
    "context": raw.get("context", {}),
    "per_cycle_ns": {
        name: round(cpu_ns(name), 1) for name in sorted(bench)
    },
    "scale_ratio_10k_vs_100": {
        "fcfs_incremental": ratio("BM_FcfsIncremental"),
        "klink_incremental": ratio("BM_KlinkIncremental"),
        "fcfs_full_scan": ratio("BM_FcfsFullScan"),
        "klink_full_scan": ratio("BM_KlinkFullScan"),
    },
    "incremental_ratio_target": TARGET,
}
ratios = result["scale_ratio_10k_vs_100"]
result["incremental_ratio_ok"] = (
    ratios["fcfs_incremental"] <= TARGET
    and ratios["klink_incremental"] <= TARGET
)

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(json.dumps(ratios, indent=2))
print("scheduler scale:", "OK" if result["incremental_ratio_ok"] else "FAILED")
sys.exit(0 if result["incremental_ratio_ok"] else 1)
PY
