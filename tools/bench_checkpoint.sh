#!/usr/bin/env bash
# Measures checkpointing overhead and records it in BENCH_checkpoint.json:
#   1. builds micro_checkpoint in Release (-O2 -DNDEBUG),
#   2. runs the same 4-query YSB engine with checkpoints off and with
#      barrier checkpoints at a 1 s interval (fsync'd epoch files included),
#   3. records engine events/s for both lanes and the relative overhead.
#
# Usage: tools/bench_checkpoint.sh [build-dir] [output-json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-release}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_checkpoint.json}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target micro_checkpoint

RAW_JSON="$(mktemp)"
"$BUILD_DIR/bench/micro_checkpoint" \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$RAW_JSON"

python3 - "$RAW_JSON" "$OUT_JSON" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

bench = {b["name"]: b for b in raw["benchmarks"]}
off = bench["BM_YsbNoCheckpoint"]["items_per_second"]
on = bench["BM_YsbCheckpoint1s"]["items_per_second"]

result = {
    "description": "Engine throughput with barrier checkpoints off vs. "
                   "armed at a 1 s interval (see bench/micro_checkpoint.cc); "
                   "the 'on' lane includes barrier alignment, operator state "
                   "serialization, and fsync'd epoch files.",
    "context": raw.get("context", {}),
    "benchmarks": {
        name: {
            "cpu_time": bench[name]["cpu_time"],
            "time_unit": bench[name]["time_unit"],
            "items_per_second": bench[name].get("items_per_second"),
        }
        for name in sorted(bench)
    },
    "events_per_second": {
        "checkpoint_off": round(off, 1),
        "checkpoint_1s": round(on, 1),
    },
    "overhead_fraction": round(1.0 - on / off, 4),
}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(json.dumps({"events_per_second": result["events_per_second"],
                  "overhead_fraction": result["overhead_fraction"]},
                 indent=2))
PY
